(* The experiment harness: cache round-trips, corruption recovery, cache
   keys that ignore the domain count, the --no-cache bypass, and the
   resume-after-kill contract of the runner.

   Everything runs against a toy experiment in a private temp directory —
   the tests never touch the repository's results/ tree. *)

module Cache = Bcclb_harness.Cache
module Experiment = Bcclb_harness.Experiment
module Fsutil = Bcclb_harness.Fsutil
module Params = Bcclb_harness.Params
module Runner = Bcclb_harness.Runner
module Sink = Bcclb_harness.Sink

(* ---- scratch directories ---- *)

let temp_counter = ref 0

let fresh_dir () =
  incr temp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bcclb_harness_test.%d.%d" (Unix.getpid ()) !temp_counter)
  in
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  dir

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* Relative paths of all regular files under [dir], sorted — how we
   compare the entry sets two runs produced. *)
let ls_files dir =
  let rec go rel acc =
    let abs = if rel = "" then dir else Filename.concat dir rel in
    if Sys.is_directory abs then
      Array.fold_left
        (fun acc e -> go (if rel = "" then e else Filename.concat rel e) acc)
        acc (Sys.readdir abs)
    else rel :: acc
  in
  List.sort String.compare (if Sys.file_exists dir then go "" [] else [])

(* ---- the toy experiment ---- *)

let toy_grid = List.map (fun n -> Params.v [ ("n", Params.Int n) ]) [ 1; 2; 3; 4; 5; 6 ]

(* [computed] counts real cell evaluations (cache hits do not count);
   atomic because cells run from worker domains. [fail_on] injects a
   failure for chosen cells — the kill-mid-sweep stand-in. *)
let toy ?(fail_on = fun _ -> false) ~computed () =
  {
    Experiment.id = "toy";
    title = "Toy: squares";
    doc = "test fixture";
    version = 1;
    tables =
      [ { Experiment.name = ""; columns = [ Experiment.icol "n"; Experiment.icol "sq" ] } ];
    notes = [];
    default_grid = toy_grid;
    grid_of_ns = None;
    n_range = None;
    cell =
      (fun p ->
        let n = Params.int p "n" in
        if fail_on n then failwith "injected failure";
        Atomic.incr computed;
        [ Experiment.row [ ("n", Params.Int n); ("sq", Params.Int (n * n)) ] ]);
  }

let render_run ?cache ?num_domains exp =
  let buf = Buffer.create 256 in
  let report = Runner.run ?cache ?num_domains ~sink:(Sink.to_buffer buf) exp in
  (Buffer.contents buf, report)

(* ---- params ---- *)

let test_params_canonical () =
  let p = Params.v [ ("b", Params.Float 0.5); ("a", Params.Int 7) ] in
  Alcotest.(check string) "tagged, sorted" "a=i:7;b=f:0x1p-1" (Params.canonical p);
  let q = Params.v [ ("a", Params.Int 7); ("b", Params.Float 0.5) ] in
  Alcotest.(check bool) "order-insensitive" true (Params.equal p q);
  let r = Params.v [ ("a", Params.Str "7"); ("b", Params.Float 0.5) ] in
  Alcotest.(check bool) "type changes the encoding" false
    (String.equal (Params.canonical p) (Params.canonical r));
  Alcotest.check_raises "duplicate key rejected"
    (Invalid_argument "Params.v: duplicate key a") (fun () ->
      ignore (Params.v [ ("a", Params.Int 1); ("a", Params.Int 2) ]))

(* ---- cache ---- *)

let toy_rows = [ Experiment.row [ ("n", Params.Int 3); ("sq", Params.Int 9) ] ]

let toy_key () =
  Cache.key ~exp_id:"toy" ~version:1 ~params:(Params.v [ ("n", Params.Int 3) ])

let entry_path cache key =
  Filename.concat (Filename.concat (Cache.root cache) "toy") (Cache.key_hash key ^ ".entry")

let test_cache_roundtrip () =
  with_dir (fun dir ->
      let c = Cache.create ~root:dir in
      let k = toy_key () in
      Alcotest.(check bool) "miss before store" true (Cache.find c k = None);
      Cache.store c k toy_rows;
      Alcotest.(check bool) "hit after store" true (Cache.find c k = Some toy_rows);
      let k' =
        Cache.key ~exp_id:"toy" ~version:2 ~params:(Params.v [ ("n", Params.Int 3) ])
      in
      Alcotest.(check bool) "version bump misses" true (Cache.find c k' = None);
      Cache.remove c k;
      Alcotest.(check bool) "miss after remove" true (Cache.find c k = None))

let test_cache_corruption () =
  let clobber c k f =
    Cache.store c k toy_rows;
    let p = entry_path c k in
    f p;
    Alcotest.(check bool) "corrupt entry reads as miss" true (Cache.find c k = None);
    Alcotest.(check bool) "corrupt entry deleted" false (Sys.file_exists p);
    (* The slot is usable again: a store after the miss round-trips. *)
    Cache.store c k toy_rows;
    Alcotest.(check bool) "recovered after re-store" true (Cache.find c k = Some toy_rows)
  in
  with_dir (fun dir ->
      let c = Cache.create ~root:dir in
      let k = toy_key () in
      clobber c k (fun p ->
          (* Flip a payload byte: magic intact, checksum mismatch. *)
          let s = Bytes.of_string (Fsutil.read_file p) in
          let i = Bytes.length s - 1 in
          Bytes.set s i (Char.chr (Char.code (Bytes.get s i) lxor 0xff));
          Fsutil.write_file_atomic p (Bytes.to_string s));
      clobber c k (fun p ->
          (* Truncate mid-checksum: a torn write. *)
          let s = Fsutil.read_file p in
          Fsutil.write_file_atomic p (String.sub s 0 (String.length s / 2)));
      clobber c k (fun p -> Fsutil.write_file_atomic p "JUNK-MAGIC\nnot a checksum\n"))

(* ---- runner: keys independent of the domain count ---- *)

let test_key_domain_independence () =
  with_dir (fun dir_seq ->
      with_dir (fun dir_par ->
          let computed = Atomic.make 0 in
          let exp = toy ~computed () in
          let out_seq, _ =
            render_run ~cache:(Cache.create ~root:dir_seq) ~num_domains:1 exp
          in
          let out_par, _ =
            render_run ~cache:(Cache.create ~root:dir_par) ~num_domains:4 exp
          in
          Alcotest.(check string) "reports byte-identical across domain counts" out_seq
            out_par;
          Alcotest.(check (list string)) "same cache entries for 1 and 4 domains"
            (ls_files dir_seq) (ls_files dir_par);
          (* And the parallel run now hits the sequential run's cache. *)
          let before = Atomic.get computed in
          let out_warm, report =
            render_run ~cache:(Cache.create ~root:dir_seq) ~num_domains:4 exp
          in
          Alcotest.(check int) "warm run computes nothing" before (Atomic.get computed);
          Alcotest.(check int) "warm run is all hits" report.Sink.cells report.Sink.hits;
          Alcotest.(check string) "warm report byte-identical" out_seq out_warm))

(* ---- runner: --no-cache bypasses reads and writes ---- *)

let test_no_cache_bypass () =
  with_dir (fun dir ->
      let computed = Atomic.make 0 in
      let exp = toy ~computed () in
      let cache = Cache.create ~root:dir in
      let cells = List.length toy_grid in
      let cached_out, _ = render_run ~cache exp in
      Alcotest.(check int) "cold run computes every cell" cells (Atomic.get computed);
      let entries = ls_files dir in
      Alcotest.(check int) "one entry per cell" cells (List.length entries);
      (* Poke a hole so a write-through would be visible. *)
      Cache.remove cache (toy_key ());
      let bypass_out, report = render_run exp in
      Alcotest.(check int) "bypass recomputes despite warm cache" (2 * cells)
        (Atomic.get computed);
      Alcotest.(check int) "bypass reports misses only" cells report.Sink.misses;
      Alcotest.(check int) "hole not refilled" (cells - 1) (List.length (ls_files dir));
      Alcotest.(check string) "same report either way" cached_out bypass_out)

(* ---- runner: killed sweep resumes from checkpointed cells ---- *)

let test_resume_after_failure () =
  with_dir (fun dir ->
      with_dir (fun dir_fresh ->
          let computed = Atomic.make 0 in
          let broken = ref true in
          let exp = toy ~fail_on:(fun n -> !broken && n = 4) ~computed () in
          let cache = Cache.create ~root:dir in
          (* First attempt dies on cell n=4 — after the rest of the batch
             has drained and checkpointed (the map_batch_timed contract). *)
          (match render_run ~cache ~num_domains:2 exp with
          | _ -> Alcotest.fail "injected failure did not propagate"
          | exception Runner.Cell_failed { exp_id; params; message } ->
            (* The wrapper names the cell that died: experiment id, the
               canonical parameter point, and the original exception. *)
            Alcotest.(check string) "failure names its experiment" "toy" exp_id;
            Alcotest.(check string) "failure names its cell" "n=i:4" params;
            Alcotest.(check string) "registered printer format"
              (Printf.sprintf "cell toy[n=i:4] failed: %s" message)
              (Printexc.to_string (Runner.Cell_failed { exp_id; params; message }));
            Alcotest.(check bool) "original exception text kept" true
              (String.length message >= 17
              &&
              let rec has i =
                i + 17 <= String.length message
                && (String.sub message i 17 = "injected failure\"" || has (i + 1))
              in
              has 0));
          let cells = List.length toy_grid in
          Alcotest.(check int) "all healthy cells checkpointed" (cells - 1)
            (List.length (ls_files dir));
          Alcotest.(check int) "all healthy cells computed once" (cells - 1)
            (Atomic.get computed);
          (* Restart after the fault clears: only the dead cell recomputes. *)
          broken := false;
          let out_resumed, report = render_run ~cache ~num_domains:2 exp in
          Alcotest.(check int) "resume recomputes only the failed cell" cells
            (Atomic.get computed);
          Alcotest.(check int) "resume reports one miss" 1 report.Sink.misses;
          (* The resumed report is byte-identical to a never-interrupted one. *)
          let out_fresh, _ =
            render_run ~cache:(Cache.create ~root:dir_fresh)
              (toy ~computed:(Atomic.make 0) ())
          in
          Alcotest.(check string) "resumed report byte-identical to fresh" out_fresh
            out_resumed))

(* ---- JSON \uXXXX surrogate pairs (RFC 8259 §7) ---- *)

module Json = Bcclb_harness.Json

let test_json_surrogate_pairs () =
  (* 😀 combines to U+1F600 (😀), UTF-8 f0 9f 98 80. *)
  (match Json.of_string {|"\ud83d\ude00"|} with
  | Json.Str s -> Alcotest.(check string) "pair combines to U+1F600" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "parsed to a non-string");
  (* The printer emits non-BMP text as raw UTF-8, so a round trip
     through to_string/of_string is the identity. *)
  let j = Json.Obj [ ("emoji", Json.Str "ok \xf0\x9f\x98\x80"); ("n", Json.Int 3) ] in
  Alcotest.(check bool) "non-BMP round trip" true (Json.of_string (Json.to_string j) = j);
  (* BMP escapes are unchanged by the fix. *)
  (match Json.of_string {|"\u00e9A"|} with
  | Json.Str s -> Alcotest.(check string) "BMP escapes" "\xc3\xa9A" s
  | _ -> Alcotest.fail "parsed to a non-string");
  (* Unpaired or ill-formed surrogates are parse errors, not mojibake. *)
  List.iter
    (fun s ->
      match Json.of_string s with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "accepted malformed %s" s)
    [ {|"\ud83d"|}; {|"\ud83dx"|}; {|"\ud83dA"|}; {|"\ude00"|} ]

(* ---- registry: lookup, typo suggestions, JSON catalogue ---- *)

module Registry = Bcclb_harness.Registry

let test_registry_suggest () =
  Alcotest.(check bool) "det-frontier is registered" true
    (Option.is_some (Registry.find "det-frontier"));
  (* Plausible typos resolve to the new experiment's id. *)
  List.iter
    (fun typo ->
      Alcotest.(check (option string))
        (Printf.sprintf "suggest %S" typo)
        (Some "det-frontier") (Registry.suggest typo))
    [ "det-frontie"; "det_frontier"; "Det-Frontier"; "dat-frontier" ];
  (* Garbage stays unsuggested rather than snapping to something random. *)
  Alcotest.(check (option string)) "no suggestion for garbage" None
    (Registry.suggest "zzzzzzzzzzzzzz")

let test_registry_index_json () =
  let catalogue =
    match Registry.index_json () with
    | Json.List entries -> entries
    | _ -> Alcotest.fail "index_json is not a list"
  in
  Alcotest.(check int) "one entry per experiment" (List.length Registry.all)
    (List.length catalogue);
  let field name = function
    | Json.Obj kvs -> List.assoc_opt name kvs
    | _ -> None
  in
  let e15 =
    match
      List.find_opt (fun e -> field "id" e = Some (Json.Str "det-frontier")) catalogue
    with
    | Some e -> e
    | None -> Alcotest.fail "det-frontier missing from the catalogue"
  in
  (match field "n_range" e15 with
  | Some (Json.List [ Json.Int lo; Json.Int hi ]) ->
    Alcotest.(check bool) "n_range is a sane pair" true (0 < lo && lo < hi);
    Alcotest.(check (option bool)) "flat n_min agrees" (Some true)
      (Option.map (fun j -> j = Json.Int lo) (field "n_min" e15));
    Alcotest.(check (option bool)) "flat n_max agrees" (Some true)
      (Option.map (fun j -> j = Json.Int hi) (field "n_max" e15))
  | _ -> Alcotest.fail "det-frontier lacks a two-int n_range");
  (* The whole catalogue must survive a print/parse round trip — this is
     what `experiments list --json` ships to roster drivers. *)
  let j = Registry.index_json () in
  Alcotest.(check bool) "catalogue round-trips through the printer" true
    (Json.of_string (Json.to_string ~pretty:true j) = j)

let suites =
  [ Alcotest.test_case "params canonical encoding" `Quick test_params_canonical;
    Alcotest.test_case "registry suggests det-frontier for typos" `Quick
      test_registry_suggest;
    Alcotest.test_case "registry catalogue carries n_range" `Quick
      test_registry_index_json;
    Alcotest.test_case "cache round-trip" `Quick test_cache_roundtrip;
    Alcotest.test_case "corrupted entries recompute" `Quick test_cache_corruption;
    Alcotest.test_case "cache keys ignore domain count" `Quick test_key_domain_independence;
    Alcotest.test_case "--no-cache bypasses reads and writes" `Quick test_no_cache_bypass;
    Alcotest.test_case "killed sweep resumes from checkpoints" `Quick
      test_resume_after_failure ]

let qsuites =
  let open QCheck2 in
  [ Test.make ~name:"canonical encoding is injective on int grids" ~count:100
      Gen.(
        pair
          (list_size (0 -- 4) (pair (string_size ~gen:(char_range 'a' 'z') (1 -- 3)) small_int))
          (list_size (0 -- 4) (pair (string_size ~gen:(char_range 'a' 'z') (1 -- 3)) small_int)))
      (fun (xs, ys) ->
        let dedup l =
          List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) l
          |> List.map (fun (k, v) -> (k, Params.Int v))
        in
        let px = Params.v (dedup xs) and py = Params.v (dedup ys) in
        String.equal (Params.canonical px) (Params.canonical py) = Params.equal px py) ]
