open Bcclb_bcc
module G = Bcclb_graph.Graph
module Gen = Bcclb_graph.Gen
module Rng = Bcclb_util.Rng

let cycle6 = Gen.cycle 6

let test_instance_construction () =
  let inst = Instance.kt0_circulant cycle6 in
  Alcotest.(check int) "n" 6 (Instance.n inst);
  (* Circulant wiring: port p of v leads to v+p+1 mod n. *)
  Alcotest.(check int) "peer" 3 (Instance.peer inst 1 1);
  Alcotest.(check int) "port_to inverse" 1 (Instance.port_to inst 1 3);
  (* Input edges of the 6-cycle. *)
  Alcotest.(check bool) "edge 0-1" true (Instance.is_input_edge inst 0 1);
  Alcotest.(check bool) "edge 0-5" true (Instance.is_input_edge inst 0 5);
  Alcotest.(check bool) "no edge 0-2" false (Instance.is_input_edge inst 0 2);
  Alcotest.(check bool) "graph roundtrip" true (G.equal (Instance.input_graph inst) cycle6)

let test_instance_random_wiring () =
  let rng = Rng.create ~seed:9 in
  let inst = Instance.kt0_random rng cycle6 in
  ignore (Instance.validate inst);
  Alcotest.(check bool) "graph preserved" true (G.equal (Instance.input_graph inst) cycle6)

let test_kt1_wiring () =
  let inst = Instance.kt1_of_graph cycle6 in
  (* IDs are 1..6; port p of vertex 0 (id 1) leads to the p-th smallest
     other id, i.e. vertex p+1. *)
  for p = 0 to 4 do
    Alcotest.(check int) "ID-ordered ports" (p + 1) (Instance.peer inst 0 p)
  done;
  let v = Instance.view inst 0 in
  Alcotest.(check int) "neighbor id via port" 2 (View.neighbor_id v 0);
  Alcotest.(check (array int)) "all ids" [| 1; 2; 3; 4; 5; 6 |] (View.all_ids v)

let test_kt0_view_hides_ids () =
  let inst = Instance.kt0_circulant cycle6 in
  let v = Instance.view inst 0 in
  Alcotest.(check bool) "no kt1 info" true (View.kt1 v = None);
  Alcotest.check_raises "neighbor_id raises" (Invalid_argument "View.neighbor_id: not available in KT-0")
    (fun () -> ignore (View.neighbor_id v 0));
  Alcotest.(check int) "degree" 2 (View.degree v);
  Alcotest.(check (list int)) "input ports" [ 0; 4 ] (View.input_ports v)

let test_independence () =
  let inst = Instance.kt0_circulant (Gen.cycle 8) in
  (* (0,1) and (4,5) independent; (0,1) and (1,2) share vertex 1;
     (0,1) and (2,3) have diagonal (1,2) an input edge. *)
  Alcotest.(check bool) "independent" true (Instance.independent inst (0, 1) (4, 5));
  Alcotest.(check bool) "share vertex" false (Instance.independent inst (0, 1) (1, 2));
  Alcotest.(check bool) "adjacent edges" false (Instance.independent inst (0, 1) (2, 3));
  Alcotest.(check bool) "non-edges" false (Instance.independent inst (0, 2) (4, 6))

let test_crossing_structure () =
  let inst = Instance.kt0_circulant (Gen.cycle 8) in
  let crossed = Instance.cross inst (0, 1) (4, 5) in
  ignore (Instance.validate crossed);
  let g = Instance.input_graph crossed in
  (* Crossing a one-cycle along (0,1),(4,5) gives two cycles: 1..4 and 5..0. *)
  Alcotest.(check int) "two components" 2 (G.num_components g);
  Alcotest.(check bool) "edge 0-5" true (G.mem_edge g 0 5);
  Alcotest.(check bool) "edge 4-1" true (G.mem_edge g 1 4);
  Alcotest.(check bool) "edge 0-1 gone" false (G.mem_edge g 0 1);
  (* Views (per-port input flags) are unchanged at every vertex. *)
  for v = 0 to 7 do
    Alcotest.(check string) "view preserved"
      (View.fingerprint (Instance.view inst v))
      (View.fingerprint (Instance.view crossed v))
  done

let test_crossing_errors () =
  let inst = Instance.kt0_circulant (Gen.cycle 8) in
  Alcotest.check_raises "dependent edges" (Invalid_argument "Instance.cross: edges are not independent")
    (fun () -> ignore (Instance.cross inst (0, 1) (1, 2)));
  let kt1 = Instance.kt1_of_graph (Gen.cycle 8) in
  Alcotest.check_raises "KT-1 crossing" (Invalid_argument "Instance.cross: crossings only exist in KT-0")
    (fun () -> ignore (Instance.cross kt1 (0, 1) (4, 5)))

(* Lemma 3.4, executed: if the four endpoints broadcast pairwise-equal
   sequences, the crossed instance is execution-indistinguishable. The
   chatter algorithm broadcasts degree parity, equal everywhere on
   2-regular graphs, so ANY crossing is indistinguishable under it. *)
let test_lemma_3_4_chatter () =
  let algo = Bcclb_algorithms.Trivial.chatter ~rounds:5 () in
  let inst = Instance.kt0_circulant (Gen.cycle 8) in
  let crossed = Instance.cross inst (0, 1) (4, 5) in
  Alcotest.(check bool) "indistinguishable" true (Simulator.indistinguishable algo inst crossed)

(* And a discriminating algorithm (full discovery) must distinguish them:
   the instances have different input graphs. *)
let test_crossing_distinguished_by_discovery () =
  let algo = Bcclb_algorithms.Discovery.connectivity ~knowledge:Instance.KT0 ~max_degree:2 in
  let inst = Instance.kt0_circulant (Gen.cycle 8) in
  let crossed = Instance.cross inst (0, 1) (4, 5) in
  Alcotest.(check bool) "distinguished" false (Simulator.indistinguishable algo inst crossed)

let test_simulator_bandwidth_enforced () =
  let cheat =
    Algo.pack
      (Algo.bcc1 ~name:"cheat"
         ~rounds:(fun ~n:_ -> 1)
         ~init:(fun _ -> ())
         ~step:(fun () ~round:_ ~inbox:_ -> ((), Msg.of_int ~width:2 3))
         ~finish:(fun () ~inbox:_ -> true))
  in
  let inst = Instance.kt0_circulant cycle6 in
  Alcotest.(check bool) "bandwidth violation raises" true
    (try
       ignore (Simulator.run cheat inst);
       false
     with Invalid_argument _ -> true)

let test_simulator_delivery () =
  (* Vertex broadcasts its id's parity in round 1; in round 2 everyone
     must have received it on the correct ports. *)
  let algo =
    Algo.pack
      (Algo.bcc1 ~name:"parity"
         ~rounds:(fun ~n:_ -> 1)
         ~init:(fun view -> view)
         ~step:(fun view ~round:_ ~inbox:_ -> (view, Msg.of_bit (View.id view land 1 = 1)))
         ~finish:(fun view ~inbox ->
           (* Check against the circulant wiring: port p of v carries
              vertex v+p+1, whose default id is v+p+2. *)
           let n = View.n view in
           let v = View.id view - 1 in
           Array.for_all Fun.id
             (Array.mapi
                (fun p m ->
                  let sender_id = (((v + p + 1) mod n) + 1) land 1 = 1 in
                  Msg.equal m (Msg.of_bit sender_id))
                inbox)))
  in
  let inst = Instance.kt0_circulant cycle6 in
  let result = Simulator.run algo inst in
  Alcotest.(check bool) "all delivered correctly" true (Array.for_all Fun.id result.Simulator.outputs)

let test_transcripts () =
  let algo = Bcclb_algorithms.Trivial.chatter ~rounds:3 () in
  let inst = Instance.kt0_circulant cycle6 in
  let r = Simulator.run algo inst in
  let t = r.Simulator.transcripts.(0) in
  Alcotest.(check int) "rounds" 3 (Transcript.rounds t);
  Alcotest.(check string) "sent (degree 2 = even parity)" "000" (Transcript.sent_string t);
  Alcotest.(check int) "bits broadcast" 3 (Transcript.bits_broadcast t);
  Alcotest.(check int) "total bits" 18 (Simulator.total_bits_broadcast r);
  (* Round 1 receives silence; round 2 receives round-1 bits. *)
  Alcotest.(check bool) "round 1 silent" true (Msg.is_silent (Transcript.received t 1 0));
  Alcotest.(check bool) "round 2 hears 0" true (Msg.equal (Transcript.received t 2 0) Msg.zero)

let test_view_details () =
  let inst = Instance.kt1_of_graph cycle6 in
  let v = Instance.view inst 2 in
  (* Vertex 2 has id 3; its KT-1 ports are ordered by the other ids
     [1; 2; 4; 5; 6], so id 2 sits behind port 1. *)
  Alcotest.(check int) "port of id 2" 1 (View.port_of_id v 2);
  Alcotest.(check bool) "port leads back" true (View.neighbor_id v (View.port_of_id v 4) = 4);
  Alcotest.(check bool) "own id has no port" true
    (try
       ignore (View.port_of_id v 3);
       false
     with Not_found -> true);
  (* KT-0 view raises on all_ids. *)
  let v0 = Instance.view (Instance.kt0_circulant cycle6) 0 in
  Alcotest.check_raises "all_ids KT-0" (Invalid_argument "View.all_ids: not available in KT-0")
    (fun () -> ignore (View.all_ids v0))

let test_transcript_bounds () =
  let algo = Bcclb_algorithms.Trivial.chatter ~rounds:2 () in
  let r = Simulator.run algo (Instance.kt0_circulant cycle6) in
  let t = r.Simulator.transcripts.(0) in
  Alcotest.check_raises "round 0" (Invalid_argument "Transcript.sent: round out of range") (fun () ->
      ignore (Transcript.sent t 0));
  Alcotest.check_raises "round past end" (Invalid_argument "Transcript.received: round out of range")
    (fun () -> ignore (Transcript.received t 3 0));
  (* Transcript equality is sensitive to the fingerprint. *)
  let t' =
    Transcript.make ~fingerprint:"other" ~sent:(Transcript.sent_sequence t)
      ~received:(Array.init 2 (fun r -> Array.init 5 (fun p -> Transcript.received t (r + 1) p)))
  in
  Alcotest.(check bool) "fingerprint matters" false (Transcript.equal t t')

(* Randomized parity: sent_string decoded from the packed 2-bit code must
   match the character-by-character construction from the raw Msg array,
   including sequences long past one machine word (40 rounds = 80 bits). *)
let test_packed_sent_code () =
  let module Bits = Bcclb_util.Bits in
  let rng = Rng.create ~seed:77 in
  for _ = 1 to 100 do
    let rounds = 1 + Rng.int rng 40 in
    let sent =
      Array.init rounds (fun _ ->
          match Rng.int rng 3 with 0 -> Msg.silent | 1 -> Msg.zero | _ -> Msg.one)
    in
    let received = Array.map (fun _ -> [||]) sent in
    let t = Transcript.make ~fingerprint:"fp" ~sent ~received in
    let expect = String.init rounds (fun i -> Msg.to_char1 sent.(i)) in
    Alcotest.(check string) "sent_string parity" expect (Transcript.sent_string t);
    let code = Transcript.sent_code t in
    Alcotest.(check int) "code length" (2 * rounds) (Bits.Seq.length code);
    for r = 0 to rounds - 1 do
      Alcotest.(check int) "code1 per round"
        (Msg.code1 sent.(r))
        (Bits.value (Bits.Seq.word code ~pos:(2 * r) ~len:2))
    done
  done

(* run_sent_codes must agree with the full simulator's transcripts. *)
let test_run_sent_codes () =
  let algo = Bcclb_algorithms.Trivial.chatter ~rounds:5 () in
  let inst = Instance.kt0_circulant (Gen.cycle 8) in
  let r = Simulator.run algo inst in
  let codes = Simulator.run_sent_codes algo inst in
  Array.iteri
    (fun v t ->
      let decoded =
        String.init (Transcript.rounds t) (fun i ->
            Msg.char_of_code1 ((codes.(v) lsr (2 * i)) land 3))
      in
      Alcotest.(check string) "codes = transcript" (Transcript.sent_string t) decoded)
    r.Simulator.transcripts

let test_indistinguishable_from () =
  let algo = Bcclb_algorithms.Trivial.chatter ~rounds:5 () in
  let inst = Instance.kt0_circulant (Gen.cycle 8) in
  let crossed = Instance.cross inst (0, 1) (4, 5) in
  let base = Simulator.run algo inst in
  let pred = Simulator.indistinguishable_from base crossed in
  Alcotest.(check bool) "partial application matches one-shot" true
    (pred (Simulator.run algo crossed));
  Alcotest.(check bool) "self-indistinguishable" true
    (Simulator.indistinguishable_from base inst base)

let test_msg_ordering () =
  Alcotest.(check int) "silent < word" (-1) (Msg.compare Msg.silent Msg.zero);
  Alcotest.(check int) "zero < one" (-1) (Msg.compare Msg.zero Msg.one);
  Alcotest.(check int) "equal" 0 (Msg.compare Msg.one Msg.one);
  Alcotest.(check char) "char of silent" '_' (Msg.to_char1 Msg.silent);
  Alcotest.(check bool) "wide to_char1 raises" true
    (try
       ignore (Msg.to_char1 (Msg.of_int ~width:2 1));
       false
     with Invalid_argument _ -> true)

let test_problems () =
  Alcotest.(check bool) "system AND" false (Problems.system_decision [| true; false; true |]);
  Alcotest.(check bool) "system AND all" true (Problems.system_decision [| true; true |]);
  Alcotest.(check bool) "two-cycle promise yes" true (Problems.is_two_cycle_input cycle6);
  let rng = Rng.create ~seed:1 in
  Alcotest.(check bool) "two-cycle promise no-instance" true
    (Problems.is_two_cycle_input (Gen.random_two_cycles rng 10));
  Alcotest.(check bool) "three cycles not two-cycle" false
    (Problems.is_two_cycle_input (Gen.multicycle_of_lengths rng 9 [ 3; 3; 3 ]));
  Alcotest.(check bool) "multicycle allows many (len>=4)" true
    (Problems.is_multicycle_input (Gen.multicycle_of_lengths rng 12 [ 4; 4; 4 ]));
  Alcotest.(check bool) "multicycle rejects short cycles" false
    (Problems.is_multicycle_input (Gen.multicycle_of_lengths rng 9 [ 3; 3; 3 ]));
  Alcotest.(check bool) "path not promise" false
    (Problems.is_two_cycle_input (G.of_edges ~n:3 [ (0, 1); (1, 2) ]))

let test_components_verifier () =
  let g = Gen.multicycle_of_lengths (Rng.create ~seed:2) 10 [ 4; 6 ] in
  let truth = G.components g in
  Alcotest.(check bool) "truth accepted" true (Problems.components_correct g truth);
  (* Any relabelling is fine. *)
  let relabeled = Array.map (fun l -> l + 1000) truth in
  Alcotest.(check bool) "relabelling accepted" true (Problems.components_correct g relabeled);
  (* Merging two components is not. *)
  let merged = Array.map (fun _ -> 0) truth in
  Alcotest.(check bool) "merged rejected" false (Problems.components_correct g merged);
  (* Splitting one component is not. *)
  let split = Array.copy truth in
  split.(0) <- 999999;
  Alcotest.(check bool) "split rejected" false (Problems.components_correct g split)


let test_split_compiler_boruvka () =
  (* Compile the BCC(2L) Boruvka algorithm down to BCC(1): outputs must
     be identical on arbitrary KT-1 instances. *)
  let inner = Bcclb_algorithms.Boruvka.connectivity () in
  let outer = Split.compile inner in
  Alcotest.(check int) "bandwidth 1" 1 (Algo.bandwidth outer ~n:64);
  let rng = Rng.create ~seed:41 in
  for _ = 1 to 8 do
    let g = Bcclb_graph.Gen.gnp rng 12 0.18 in
    let inst = Instance.kt1_of_graph g in
    let direct = Simulator.run inner inst in
    let split = Simulator.run outer inst in
    Alcotest.(check (array bool)) "same outputs" direct.Simulator.outputs split.Simulator.outputs
  done

let test_split_compiler_rounds () =
  let inner = Bcclb_algorithms.Boruvka.connectivity () in
  let outer = Split.compile inner in
  let n = 64 in
  let b = Algo.bandwidth inner ~n in
  Alcotest.(check int) "round blow-up"
    (Algo.rounds inner ~n * Split.block_len ~b)
    (Algo.rounds outer ~n);
  Alcotest.(check int) "header bits b=1" 1 (Split.header_bits ~b:1);
  Alcotest.(check int) "header bits b=14" 4 (Split.header_bits ~b:14)

let test_split_compiler_identity_on_bcc1 () =
  (* Splitting a BCC(1) algorithm still works (block length 2). *)
  let inner = Bcclb_algorithms.Discovery.connectivity ~knowledge:Instance.KT0 ~max_degree:2 in
  let outer = Split.compile inner in
  let rng = Rng.create ~seed:42 in
  let g = Bcclb_graph.Gen.random_two_cycles rng 10 in
  let inst = Instance.kt0_circulant g in
  Alcotest.(check bool) "same decision" 
    (Problems.system_decision (Simulator.run inner inst).Simulator.outputs)
    (Problems.system_decision (Simulator.run outer inst).Simulator.outputs)

let test_split_preserves_silence_patterns () =
  (* An inner algorithm that alternates silence and words must roundtrip
     exactly through the width-header encoding. *)
  let inner =
    Algo.pack
      { Algo.name = "alternator";
        anonymous = false;
        bandwidth = (fun ~n:_ -> 5);
        rounds = (fun ~n:_ -> 4);
        init = (fun view -> (View.id view, []));
        step =
          (fun (id, log) ~round ~inbox ->
            let received = Array.to_list (Array.map Msg.to_string inbox) in
            let msg = if (round + id) mod 2 = 0 then Msg.silent else Msg.of_int ~width:(1 + (round mod 5)) round in
            ((id, received :: log), msg));
        finish = (fun (_, log) ~inbox -> List.length log = 4 && Array.length inbox > 0) }
  in
  let outer = Split.compile inner in
  let inst = Instance.kt0_circulant (Bcclb_graph.Gen.cycle 6) in
  let direct = Simulator.run inner inst in
  let split = Simulator.run outer inst in
  Alcotest.(check (array bool)) "alternator outputs" direct.Simulator.outputs split.Simulator.outputs

let suites =
  [ Alcotest.test_case "instance construction" `Quick test_instance_construction;
    Alcotest.test_case "random wiring" `Quick test_instance_random_wiring;
    Alcotest.test_case "KT-1 wiring" `Quick test_kt1_wiring;
    Alcotest.test_case "KT-0 hides ids" `Quick test_kt0_view_hides_ids;
    Alcotest.test_case "independence (Def 3.2)" `Quick test_independence;
    Alcotest.test_case "crossing (Def 3.3)" `Quick test_crossing_structure;
    Alcotest.test_case "crossing errors" `Quick test_crossing_errors;
    Alcotest.test_case "Lemma 3.4 via chatter" `Quick test_lemma_3_4_chatter;
    Alcotest.test_case "crossing distinguished by discovery" `Quick test_crossing_distinguished_by_discovery;
    Alcotest.test_case "bandwidth enforced" `Quick test_simulator_bandwidth_enforced;
    Alcotest.test_case "message delivery" `Quick test_simulator_delivery;
    Alcotest.test_case "transcripts" `Quick test_transcripts;
    Alcotest.test_case "packed sent_code parity" `Quick test_packed_sent_code;
    Alcotest.test_case "run_sent_codes = transcripts" `Quick test_run_sent_codes;
    Alcotest.test_case "indistinguishable_from" `Quick test_indistinguishable_from;
    Alcotest.test_case "split compiler: boruvka" `Quick test_split_compiler_boruvka;
    Alcotest.test_case "split compiler: rounds" `Quick test_split_compiler_rounds;
    Alcotest.test_case "split compiler: bcc1 identity" `Quick test_split_compiler_identity_on_bcc1;
    Alcotest.test_case "split compiler: silence patterns" `Quick test_split_preserves_silence_patterns;
    Alcotest.test_case "view details" `Quick test_view_details;
    Alcotest.test_case "transcript bounds" `Quick test_transcript_bounds;
    Alcotest.test_case "msg ordering" `Quick test_msg_ordering;
    Alcotest.test_case "problem specs" `Quick test_problems;
    Alcotest.test_case "components verifier" `Quick test_components_verifier ]

(* A deterministic pseudo-random inner BCC(b) algorithm: message widths
   and bits derived from (id, round, bits heard so far). Used to fuzz the
   Split compiler against the direct simulator. *)
let fuzz_inner ~b ~rounds_n seed =
  Algo.pack
    { Algo.name = Printf.sprintf "fuzz-%d" seed;
      anonymous = false;
      bandwidth = (fun ~n:_ -> b);
      rounds = (fun ~n:_ -> rounds_n);
      init = (fun view -> (View.id view, 0));
      step =
        (fun (id, heard) ~round ~inbox ->
          let heard = Array.fold_left (fun acc m -> acc + (Msg.width m * 7) + 1) heard inbox in
          let h = (id * 31) + (round * 101) + (heard * 17) + seed in
          let msg =
            match h mod (b + 1) with
            | 0 -> if h land 1 = 0 then Msg.silent else Msg.of_int ~width:b 0
            | w -> Msg.of_int ~width:w (((h / 7) land max_int) mod (1 lsl w))
          in
          ((id, heard), msg));
      finish =
        (fun (id, heard) ~inbox ->
          let heard = Array.fold_left (fun acc m -> acc + (Msg.width m * 7) + 1) heard inbox in
          (id + heard) land 0xFFFF) }

let qsuites =
  let open QCheck2 in
  [ Test.make ~name:"crossing is an involution on the input graph" ~count:200
      Gen.(pair (8 -- 16) (0 -- 100000))
      (fun (n, seed) ->
        let rng = Rng.create ~seed in
        let g = Bcclb_graph.Gen.random_cycle rng n in
        let inst = Instance.kt0_circulant g in
        (* Find an independent pair on the cycle. *)
        match Bcclb_graph.Cycles.of_graph g with
        | None -> false
        | Some s ->
          let cyc = List.hd (Bcclb_graph.Cycles.cycles s) in
          let e1 = (cyc.(0), cyc.(1)) and e2 = (cyc.(3), cyc.(4)) in
          if not (Instance.independent inst e1 e2) then QCheck2.assume_fail ()
          else begin
            let crossed = Instance.cross inst e1 e2 in
            (* Crossing the two new edges back restores the graph. *)
            let e1' = (fst e1, snd e2) and e2' = (fst e2, snd e1) in
            let restored = Instance.cross crossed e1' e2' in
            G.equal (Instance.input_graph restored) g
          end);
    Test.make ~name:"crossing preserves every view" ~count:200
      Gen.(pair (8 -- 16) (0 -- 100000))
      (fun (n, seed) ->
        let rng = Rng.create ~seed in
        let g = Bcclb_graph.Gen.random_cycle rng n in
        let inst = Instance.kt0_random rng g in
        match Bcclb_graph.Cycles.of_graph g with
        | None -> false
        | Some s ->
          let cyc = List.hd (Bcclb_graph.Cycles.cycles s) in
          let e1 = (cyc.(0), cyc.(1)) and e2 = (cyc.(3), cyc.(4)) in
          if not (Instance.independent inst e1 e2) then QCheck2.assume_fail ()
          else begin
            let crossed = Instance.cross inst e1 e2 in
            ignore (Instance.validate crossed);
            let rec ok v =
              v >= n
              || String.equal
                   (View.fingerprint (Instance.view inst v))
                   (View.fingerprint (Instance.view crossed v))
                 && ok (v + 1)
            in
            ok 0
          end);
    Test.make ~name:"simulator deterministic given seed" ~count:50
      Gen.(pair (6 -- 12) (0 -- 100000))
      (fun (n, seed) ->
        let rng = Rng.create ~seed in
        let g = Bcclb_graph.Gen.random_cycle rng n in
        let inst = Instance.kt0_circulant g in
        let algo = Bcclb_algorithms.Trivial.coin_guess () in
        let r1 = Simulator.run ~seed algo inst and r2 = Simulator.run ~seed algo inst in
        r1.Simulator.outputs = r2.Simulator.outputs);
    Test.make ~name:"public coins agree across vertices" ~count:50
      Gen.(pair (6 -- 12) (0 -- 100000))
      (fun (n, seed) ->
        let rng = Rng.create ~seed in
        let g = Bcclb_graph.Gen.random_cycle rng n in
        let inst = Instance.kt0_circulant g in
        let algo = Bcclb_algorithms.Trivial.coin_guess () in
        let r = Simulator.run ~seed algo inst in
        let first = r.Simulator.outputs.(0) in
        Array.for_all (Bool.equal first) r.Simulator.outputs);
    Test.make ~name:"split compiler = direct on fuzzed BCC(b) algorithms" ~count:60
      Gen.(triple (1 -- 8) (1 -- 5) (0 -- 100000))
      (fun (b, rounds_n, seed) ->
        let rng = Rng.create ~seed in
        let n = 5 + Rng.int rng 6 in
        let g = Bcclb_graph.Gen.random_multicycle rng n in
        let inst = Instance.kt0_circulant g in
        let inner = fuzz_inner ~b ~rounds_n seed in
        let outer = Split.compile inner in
        let direct = Simulator.run inner inst in
        let split = Simulator.run outer inst in
        direct.Simulator.outputs = split.Simulator.outputs) ]
