let q = List.map QCheck_alcotest.to_alcotest

(* The dist end-to-end tests re-exec this very binary as their worker
   processes (same-executable contract of the Marshal audit in
   Bcclb_dist.Msg): when the flag variable is set, this process is a
   worker, not a test run — connect and serve, never touch alcotest. *)
let () =
  match Sys.getenv_opt Test_dist.worker_env with
  | Some address when address <> "" -> Test_dist.worker_main address
  | _ -> (
    (* Listen-mode variant: a pre-started roster worker for the
       `Roster end-to-end tests. *)
    match Sys.getenv_opt Test_dist.listen_env with
    | Some address when address <> "" -> Test_dist.worker_main_listen address
    | _ -> ())

let () =
  Alcotest.run "bcclb"
    [ ("util", Test_util.suites @ q Test_util.qsuites);
      ("bignum", Test_bignum.suites @ q Test_bignum.qsuites);
      ("graph", Test_graph.suites @ q Test_graph.qsuites);
      ("partition", Test_partition.suites @ q Test_partition.qsuites);
      ("linalg", Test_linalg.suites @ q Test_linalg.qsuites);
      ("bcc", Test_bcc.suites @ q Test_bcc.qsuites);
      ("algorithms", Test_algorithms.suites @ q Test_algorithms.qsuites);
      ("comm", Test_comm.suites @ q Test_comm.qsuites);
      ("info", Test_info.suites @ q Test_info.qsuites);
      ("core", Test_core.suites @ q Test_core.qsuites);
      ("plschemes", Test_plschemes.suites @ q Test_plschemes.qsuites);
      ("rcc", Test_rcc.suites @ q Test_rcc.qsuites);
      ("sketch", Test_sketch.suites @ q Test_sketch.qsuites);
      ("detsketch", Test_detsketch.suites @ q Test_detsketch.qsuites);
      ("engine", Test_engine.suites @ q Test_engine.qsuites);
      ("harness", Test_harness.suites @ q Test_harness.qsuites);
      ("obs", Test_obs.suites @ q Test_obs.qsuites);
      ("dist", Test_dist.suites @ q Test_dist.qsuites);
      ("ufind", Test_ufind.suites @ q Test_ufind.qsuites);
      ("serve", Test_serve.suites @ q Test_serve.qsuites);
      ("orbit", Test_orbit.suites @ q Test_orbit.qsuites) ]
