let q = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "bcclb"
    [ ("util", Test_util.suites @ q Test_util.qsuites);
      ("bignum", Test_bignum.suites @ q Test_bignum.qsuites);
      ("graph", Test_graph.suites @ q Test_graph.qsuites);
      ("partition", Test_partition.suites @ q Test_partition.qsuites);
      ("linalg", Test_linalg.suites @ q Test_linalg.qsuites);
      ("bcc", Test_bcc.suites @ q Test_bcc.qsuites);
      ("algorithms", Test_algorithms.suites @ q Test_algorithms.qsuites);
      ("comm", Test_comm.suites @ q Test_comm.qsuites);
      ("info", Test_info.suites @ q Test_info.qsuites);
      ("core", Test_core.suites @ q Test_core.qsuites);
      ("plschemes", Test_plschemes.suites @ q Test_plschemes.qsuites);
      ("rcc", Test_rcc.suites @ q Test_rcc.qsuites);
      ("sketch", Test_sketch.suites @ q Test_sketch.qsuites);
      ("engine", Test_engine.suites @ q Test_engine.qsuites);
      ("harness", Test_harness.suites @ q Test_harness.qsuites);
      ("obs", Test_obs.suites @ q Test_obs.qsuites) ]
