bin/experiments.mli:
