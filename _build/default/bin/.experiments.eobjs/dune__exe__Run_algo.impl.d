bin/run_algo.ml: Arg Bcclb_algorithms Bcclb_bcc Bcclb_graph Bcclb_util Cmd Cmdliner List Printf String Term
