bin/experiments.ml: Arg Array Bcclb_algorithms Bcclb_bcc Bcclb_bignum Bcclb_comm Bcclb_core Bcclb_graph Bcclb_partition Bcclb_plschemes Bcclb_rcc Bcclb_util Cmd Cmdliner Fun Int List Printf Term
