bin/run_algo.mli:
