(** GF(2) ℓ₀-samplers: XOR-mergeable sketches of a set of coordinates
    that support sampling one member with constant probability — the
    engine of the AGM-style polylog-round Connectivity algorithm (the
    "O(poly log n) rounds in BCC(1)" regime the paper's introduction
    situates its lower bounds against).

    Hash functions come from a caller-supplied public-coin {!hash_spec},
    so independently built samplers (one per vertex) are XOR-compatible:
    the merge of the samplers of a vertex set sketches the XOR of their
    incidence vectors — internal edges cancel, boundary edges survive. *)

type hash_spec

type t

val fresh_spec : Bcclb_util.Rng.t -> hash_spec
(** Draw a hash specification from (public) coins. *)

val create : universe:int -> check_bits:int -> hash_spec -> t
(** Empty sampler over coordinates [0, universe).
    @raise Invalid_argument on empty universe. *)

val toggle : t -> int -> unit
(** Add/remove coordinate (GF(2)). @raise Invalid_argument out of range. *)

val merge : t -> t -> t
(** XOR of two samplers (same spec/universe required). *)

val merge_into : into:t -> t -> unit

val copy : t -> t

val sample : t -> int option
(** A verified member of the sketched set, or [None] (failure probability
    is constant per sampler; boost with independent copies). Never
    returns a coordinate that fails the checksum, so false positives
    occur only on checksum collisions (probability 2^{-check_bits} per
    level). *)

val is_zero : t -> bool
(** The sketched set is surely empty (all aggregates zero). *)

val serialized_bits : t -> int
val to_bits : t -> string
(** '0'/'1' serialisation for broadcasting. *)

val of_bits : universe:int -> check_bits:int -> hash_spec -> string -> t
(** @raise Invalid_argument on length mismatch. *)

val bits_per_level : universe:int -> check_bits:int -> int
val levels_for : universe:int -> int
