lib/sketch/l0_sampler.mli: Bcclb_util
