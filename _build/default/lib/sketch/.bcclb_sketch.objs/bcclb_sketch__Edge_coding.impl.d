lib/sketch/edge_coding.ml: Bcclb_util
