lib/sketch/edge_coding.mli:
