lib/sketch/l0_sampler.ml: Array Bcclb_util Buffer Bytes Char Mathx Rng String
