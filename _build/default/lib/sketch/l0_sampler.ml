open Bcclb_util

(* GF(2) ℓ₀-samplers for XOR-mergeable edge sketches (Ahn–Guha–McGregor
   style, over the two-element field, which suffices for incidence
   vectors: an edge internal to a vertex set appears in exactly two
   member sketches and cancels, a boundary edge survives).

   A sampler has ⌈log₂ N⌉ + 1 geometric levels; level ℓ keeps only
   coordinates e with h(e) having ℓ leading sampled bits (probability
   2^{-ℓ}). Per level it stores three XOR-aggregates of the surviving
   coordinates: parity of their count, XOR of their ids, and XOR of a
   checksum hash of their ids. A level holding exactly one survivor has
   parity 1 and a consistent checksum, and then the id is read off
   directly; a level with ≥ 2 survivors passes the parity test only with
   an odd count and then fails the checksum with high probability.

   All hash functions are drawn from the shared public-coin stream, so
   every vertex of a BCC algorithm builds IDENTICAL samplers and sketch
   merging is plain XOR — the property the broadcast model needs. *)

type hash_spec = { a : int; b : int; a2 : int; b2 : int }

type t = {
  n_universe : int;
  levels : int;
  check_bits : int;
  spec : hash_spec;
  parity : Bytes.t;  (* one bit per level, stored as bytes for clarity *)
  xor_ids : int array;
  xor_checks : int array;
}

let prime = 2147483647

let fresh_spec rng =
  { a = 1 + Rng.int rng (prime - 1);
    b = Rng.int rng prime;
    a2 = 1 + Rng.int rng (prime - 1);
    b2 = Rng.int rng prime }

let levels_for ~universe = Mathx.ceil_log2 (max 2 universe) + 1

let create ~universe ~check_bits spec =
  if universe <= 0 then invalid_arg "L0_sampler.create: empty universe";
  let levels = levels_for ~universe in
  { n_universe = universe;
    levels;
    check_bits;
    spec;
    parity = Bytes.make levels '\000';
    xor_ids = Array.make levels 0;
    xor_checks = Array.make levels 0 }

let level_of t e =
  (* Number of leading "sampled" decisions: geometric with ratio 1/2,
     derived from a pairwise-ish hash. *)
  let h = (((t.spec.a * e) + t.spec.b) mod prime) land max_int in
  let rec count lvl h = if lvl >= t.levels - 1 || h land 1 = 1 then lvl else count (lvl + 1) (h lsr 1) in
  count 0 h

let checksum t e = (((t.spec.a2 * e) + t.spec.b2) mod prime) land ((1 lsl t.check_bits) - 1)

(* Toggle coordinate e (add over GF(2)). An item at level ℓ is present in
   levels 0..ℓ (prefix design), so updates touch a prefix. *)
let toggle t e =
  if e < 0 || e >= t.n_universe then invalid_arg "L0_sampler.toggle: coordinate out of range";
  let lvl = level_of t e in
  let c = checksum t e in
  for l = 0 to lvl do
    Bytes.set t.parity l (Char.chr (Char.code (Bytes.get t.parity l) lxor 1));
    t.xor_ids.(l) <- t.xor_ids.(l) lxor e;
    t.xor_checks.(l) <- t.xor_checks.(l) lxor c
  done

let copy t =
  { t with
    parity = Bytes.copy t.parity;
    xor_ids = Array.copy t.xor_ids;
    xor_checks = Array.copy t.xor_checks }

let merge_into ~into t =
  if into.n_universe <> t.n_universe || into.levels <> t.levels then
    invalid_arg "L0_sampler.merge_into: incompatible samplers";
  for l = 0 to into.levels - 1 do
    Bytes.set into.parity l
      (Char.chr (Char.code (Bytes.get into.parity l) lxor Char.code (Bytes.get t.parity l)));
    into.xor_ids.(l) <- into.xor_ids.(l) lxor t.xor_ids.(l);
    into.xor_checks.(l) <- into.xor_checks.(l) lxor t.xor_checks.(l)
  done

let merge a b =
  let r = copy a in
  merge_into ~into:r b;
  r

(* Scan levels from sparsest (deepest) to densest; accept the first level
   that looks one-sparse and verifies. *)
let sample t =
  let rec scan l =
    if l < 0 then None
    else if
      Char.code (Bytes.get t.parity l) = 1
      && t.xor_ids.(l) >= 0
      && t.xor_ids.(l) < t.n_universe
      && checksum t t.xor_ids.(l) = t.xor_checks.(l)
      && level_of t t.xor_ids.(l) >= l
    then Some t.xor_ids.(l)
    else scan (l - 1)
  in
  scan (t.levels - 1)

let is_zero t =
  let rec go l = l >= t.levels || (Char.code (Bytes.get t.parity l) = 0 && t.xor_ids.(l) = 0 && go (l + 1)) in
  go 0

(* Bit-serialisation, for broadcasting sketches in BCC(1): per level,
   1 parity bit + id bits + check bits. *)
let bits_per_level ~universe ~check_bits = 1 + Mathx.ceil_log2 (max 2 universe) + check_bits

let serialized_bits t = t.levels * bits_per_level ~universe:t.n_universe ~check_bits:t.check_bits

let to_bits t =
  let idb = Mathx.ceil_log2 (max 2 t.n_universe) in
  let buf = Buffer.create (serialized_bits t) in
  for l = 0 to t.levels - 1 do
    Buffer.add_char buf (if Char.code (Bytes.get t.parity l) = 1 then '1' else '0');
    for i = idb - 1 downto 0 do
      Buffer.add_char buf (if (t.xor_ids.(l) lsr i) land 1 = 1 then '1' else '0')
    done;
    for i = t.check_bits - 1 downto 0 do
      Buffer.add_char buf (if (t.xor_checks.(l) lsr i) land 1 = 1 then '1' else '0')
    done
  done;
  Buffer.contents buf

let of_bits ~universe ~check_bits spec s =
  let t = create ~universe ~check_bits spec in
  let idb = Mathx.ceil_log2 (max 2 universe) in
  let per = bits_per_level ~universe ~check_bits in
  if String.length s <> t.levels * per then invalid_arg "L0_sampler.of_bits: length mismatch";
  let bit i = s.[i] = '1' in
  for l = 0 to t.levels - 1 do
    let base = l * per in
    Bytes.set t.parity l (if bit base then '\001' else '\000');
    let id = ref 0 in
    for i = 0 to idb - 1 do
      id := (!id lsl 1) lor (if bit (base + 1 + i) then 1 else 0)
    done;
    t.xor_ids.(l) <- !id;
    let c = ref 0 in
    for i = 0 to check_bits - 1 do
      c := (!c lsl 1) lor (if bit (base + 1 + idb + i) then 1 else 0)
    done;
    t.xor_checks.(l) <- !c
  done;
  t
