(** Dense integer ids for undirected edges {u, v} on [0..n−1] — the
    coordinate space of the AGM incidence sketches. *)

val universe : n:int -> int
(** n(n−1)/2. *)

val encode : n:int -> int -> int -> int
(** Order-insensitive. @raise Invalid_argument on loops / out of range. *)

val decode : n:int -> int -> int * int
(** Inverse, returning (u, v) with u < v. @raise Invalid_argument. *)

val bits : n:int -> int
(** Bits needed for an edge id. *)
