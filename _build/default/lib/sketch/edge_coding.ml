(* Dense encoding of undirected edges {u, v}, 0 <= u < v < n, as integers
   in [0, n(n-1)/2): the coordinate space of the incidence vectors that
   the AGM-style connectivity sketches live in. *)

let universe ~n = n * (n - 1) / 2

(* Row-major over ordered pairs: id(u, v) = C(v, 2) + u for u < v. *)
let encode ~n u v =
  if u = v || u < 0 || v < 0 || u >= n || v >= n then invalid_arg "Edge_coding.encode: bad endpoints";
  let u, v = if u < v then (u, v) else (v, u) in
  (v * (v - 1) / 2) + u

let decode ~n id =
  if id < 0 || id >= universe ~n then invalid_arg "Edge_coding.decode: id out of range";
  (* v = largest integer with C(v,2) <= id. *)
  let v = ref 1 in
  while (!v + 1) * !v / 2 <= id do
    incr v
  done;
  let u = id - (!v * (!v - 1) / 2) in
  (u, !v)

let bits ~n = Bcclb_util.Mathx.ceil_log2 (max 2 (universe ~n))
