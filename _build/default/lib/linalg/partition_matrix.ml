open Bcclb_partition

(* The 0-1 matrices of §2 and §4.1: rows and columns are indexed by set
   partitions (all of them for M^n, perfect matchings for E^n), and the
   (i, j) entry is 1 iff P_i ∨ P_j = 1 (the one-block partition). *)

let entry p q = if Set_partition.is_coarsest (Set_partition.join p q) then 1 else 0

let of_index index =
  let k = Array.length index in
  Bcclb_util.Arrayx.init_matrix k k (fun i j -> entry index.(i) index.(j))

let m_matrix ~n =
  if n <= 0 then invalid_arg "Partition_matrix.m_matrix: n must be positive";
  of_index (Array.of_list (Set_partition.all ~n))

let e_matrix ~n =
  if n <= 0 || n land 1 = 1 then invalid_arg "Partition_matrix.e_matrix: n must be positive and even";
  of_index (Array.of_list (Two_partition.all ~n))

let m_index ~n = Array.of_list (Set_partition.all ~n)
let e_index ~n = Array.of_list (Two_partition.all ~n)
