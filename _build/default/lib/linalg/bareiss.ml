open Bcclb_bignum

(* Fraction-free Bareiss elimination over the integers. Every division is
   exact (by the previous pivot), so all intermediate entries are exact
   minors of the input matrix — no rationals, no rounding. *)

let rank m =
  let rows = Array.length m in
  if rows = 0 then 0
  else begin
    let cols = Array.length m.(0) in
    let m = Array.map Array.copy m in
    let prev = ref Zint.one in
    let rank = ref 0 in
    let row = ref 0 in
    let col = ref 0 in
    while !row < rows && !col < cols do
      let pivot = ref (-1) in
      (try
         for r = !row to rows - 1 do
           if not (Zint.is_zero m.(r).(!col)) then begin
             pivot := r;
             raise Exit
           end
         done
       with Exit -> ());
      if !pivot = -1 then incr col
      else begin
        if !pivot <> !row then begin
          let tmp = m.(!pivot) in
          m.(!pivot) <- m.(!row);
          m.(!row) <- tmp
        end;
        let p = m.(!row).(!col) in
        for r = !row + 1 to rows - 1 do
          for c = !col + 1 to cols - 1 do
            let num = Zint.sub (Zint.mul p m.(r).(c)) (Zint.mul m.(r).(!col) m.(!row).(c)) in
            m.(r).(c) <- Zint.divexact num !prev
          done;
          m.(r).(!col) <- Zint.zero
        done;
        prev := p;
        incr rank;
        incr row;
        incr col
      end
    done;
    !rank
  end

let rank_int m = rank (Array.map (Array.map Zint.of_int) m)

(* Determinant of a square matrix: the last pivot of full Bareiss
   elimination, with sign tracking for row swaps. *)
let det m =
  let n = Array.length m in
  if n = 0 then Zint.one
  else begin
    if Array.exists (fun row -> Array.length row <> n) m then invalid_arg "Bareiss.det: matrix not square";
    let m = Array.map Array.copy m in
    let prev = ref Zint.one in
    let sign = ref 1 in
    let result = ref Zint.one in
    (try
       for k = 0 to n - 1 do
         if Zint.is_zero m.(k).(k) then begin
           let pivot = ref (-1) in
           (try
              for r = k + 1 to n - 1 do
                if not (Zint.is_zero m.(r).(k)) then begin
                  pivot := r;
                  raise Exit
                end
              done
            with Exit -> ());
           if !pivot = -1 then begin
             result := Zint.zero;
             raise Exit
           end;
           let tmp = m.(!pivot) in
           m.(!pivot) <- m.(k);
           m.(k) <- tmp;
           sign := - !sign
         end;
         for r = k + 1 to n - 1 do
           for c = k + 1 to n - 1 do
             let num = Zint.sub (Zint.mul m.(k).(k) m.(r).(c)) (Zint.mul m.(r).(k) m.(k).(c)) in
             m.(r).(c) <- Zint.divexact num !prev
           done;
           m.(r).(k) <- Zint.zero
         done;
         prev := m.(k).(k)
       done;
       result := m.(n - 1).(n - 1)
     with Exit -> ());
    if !sign = 1 then !result else Zint.neg !result
  end

let det_int m = det (Array.map (Array.map Zint.of_int) m)
