(** Arithmetic and matrix rank over the prime field ℤ_p (p < 2³¹).

    Rank over ℤ_p never exceeds rank over ℚ, so a full-rank result modulo
    any prime is an exact {e certificate} of full rank over ℚ — which is
    precisely what Theorem 2.3 (rank(Mⁿ) = Bₙ) and Lemma 4.1
    (rank(Eⁿ) = r) assert. The mod-p path makes those checks fast; the
    exact Bareiss path ({!Bareiss}) cross-checks small cases. *)

type t

val default_prime : int
(** 2³¹ − 1, prime. *)

val create : ?p:int -> unit -> t
(** Field with modulus [p] (assumed prime; see {!is_probable_prime}).
    @raise Invalid_argument if out of range. *)

val is_probable_prime : int -> bool
(** Trial-division primality (for choosing alternate moduli in tests). *)

val prime : t -> int

val normalize : t -> int -> int
(** Representative in [0, p). *)

val add : t -> int -> int -> int
val sub : t -> int -> int -> int
val mul : t -> int -> int -> int
val pow : t -> int -> int -> int

val inv : t -> int -> int
(** Multiplicative inverse. @raise Division_by_zero on zero. *)

val rank : t -> int array array -> int
(** Rank of an integer matrix over ℤ_p (entries reduced first). The input
    is not modified. *)
