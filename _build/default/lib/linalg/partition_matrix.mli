(** The communication matrices of the Partition problems.

    [Mⁿ(i,j) = 1] iff [Pᵢ ∨ Pⱼ = 1] over all Bₙ set partitions
    (Theorem 2.3 asserts rank(Mⁿ) = Bₙ); [Eⁿ] is the principal submatrix
    indexed by perfect matchings (Lemma 4.1 asserts it has full rank
    r = n!/(2^{n/2}(n/2)!)). With [Lemma 1.28, KN97], full rank gives the
    Ω(n log n) deterministic communication lower bounds of
    Corollaries 2.4 and 4.2. *)

val entry : Bcclb_partition.Set_partition.t -> Bcclb_partition.Set_partition.t -> int
(** 1 iff the join of the two partitions is the one-block partition. *)

val m_matrix : n:int -> int array array
(** The Bₙ × Bₙ matrix Mⁿ. Feasible up to n ≈ 6 (203 × 203) for exact
    rank, n = 7 (877 × 877) for mod-p rank. *)

val e_matrix : n:int -> int array array
(** The r × r matrix Eⁿ. @raise Invalid_argument on odd n. *)

val m_index : n:int -> Bcclb_partition.Set_partition.t array
(** Row order of {!m_matrix}. *)

val e_index : n:int -> Bcclb_partition.Set_partition.t array
(** Row order of {!e_matrix}. *)
