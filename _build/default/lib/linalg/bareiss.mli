(** Exact integer matrix rank and determinant by fraction-free Bareiss
    elimination over {!Bcclb_bignum.Zint}.

    Slower than the ℤ_p path but {e unconditionally} exact: used to
    cross-check rank(Mⁿ) = Bₙ and rank(Eⁿ) = r at small n, and in
    property tests against the mod-p rank. *)

val rank : Bcclb_bignum.Zint.t array array -> int
(** Rank over ℚ of an integer matrix. The input is not modified. *)

val rank_int : int array array -> int

val det : Bcclb_bignum.Zint.t array array -> Bcclb_bignum.Zint.t
(** Exact determinant. @raise Invalid_argument if not square. *)

val det_int : int array array -> Bcclb_bignum.Zint.t
