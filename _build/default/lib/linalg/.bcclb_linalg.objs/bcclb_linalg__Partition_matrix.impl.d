lib/linalg/partition_matrix.ml: Array Bcclb_partition Bcclb_util Set_partition Two_partition
