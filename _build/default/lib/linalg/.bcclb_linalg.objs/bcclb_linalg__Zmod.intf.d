lib/linalg/zmod.mli:
