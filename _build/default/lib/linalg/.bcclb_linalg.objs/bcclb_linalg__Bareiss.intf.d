lib/linalg/bareiss.mli: Bcclb_bignum
