lib/linalg/bareiss.ml: Array Bcclb_bignum Zint
