lib/linalg/zmod.ml: Array
