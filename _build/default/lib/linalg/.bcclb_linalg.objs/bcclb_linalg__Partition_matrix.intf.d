lib/linalg/partition_matrix.mli: Bcclb_partition
