(* Arithmetic modulo a prime that fits in 31 bits, so products fit a native
   int without overflow. Default prime: 2^31 - 1 (Mersenne). *)

let default_prime = 2147483647

let is_probable_prime p =
  (* Deterministic trial division is fine at this size for test helpers. *)
  if p < 2 then false
  else begin
    let rec loop d = d * d > p || (p mod d <> 0 && loop (d + 1)) in
    loop 2
  end

type t = { p : int }

let create ?(p = default_prime) () =
  if p < 2 || p > (1 lsl 31) - 1 then invalid_arg "Zmod.create: prime out of range";
  { p }

let prime t = t.p

let normalize t x =
  let r = x mod t.p in
  if r < 0 then r + t.p else r

let add t a b = (a + b) mod t.p
let sub t a b = normalize t (a - b)
let mul t a b = a * b mod t.p

let pow t a k =
  let rec loop acc a k =
    if k = 0 then acc
    else if k land 1 = 1 then loop (mul t acc a) (mul t a a) (k asr 1)
    else loop acc (mul t a a) (k asr 1)
  in
  loop 1 (normalize t a) k

(* Fermat inverse: p is prime. *)
let inv t a =
  let a = normalize t a in
  if a = 0 then raise Division_by_zero;
  pow t a (t.p - 2)

(* Rank by Gaussian elimination over Z_p. Destroys its (copied) input. *)
let rank t m =
  let rows = Array.length m in
  if rows = 0 then 0
  else begin
    let cols = Array.length m.(0) in
    let m = Array.map (fun row -> Array.map (normalize t) row) m in
    let rank = ref 0 in
    let row = ref 0 in
    let col = ref 0 in
    while !row < rows && !col < cols do
      (* Find a pivot in this column. *)
      let pivot = ref (-1) in
      (try
         for r = !row to rows - 1 do
           if m.(r).(!col) <> 0 then begin
             pivot := r;
             raise Exit
           end
         done
       with Exit -> ());
      if !pivot = -1 then incr col
      else begin
        let p = !pivot in
        if p <> !row then begin
          let tmp = m.(p) in
          m.(p) <- m.(!row);
          m.(!row) <- tmp
        end;
        let inv_pivot = inv t m.(!row).(!col) in
        for r = !row + 1 to rows - 1 do
          if m.(r).(!col) <> 0 then begin
            let factor = mul t m.(r).(!col) inv_pivot in
            for c = !col to cols - 1 do
              m.(r).(c) <- sub t m.(r).(c) (mul t factor m.(!row).(c))
            done
          end
        done;
        incr rank;
        incr row;
        incr col
      end
    done;
    !rank
  end
