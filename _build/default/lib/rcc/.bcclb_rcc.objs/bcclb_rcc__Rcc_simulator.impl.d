lib/rcc/rcc_simulator.ml: Array Bcclb_bcc Instance Msg Printf Rcc_algo
