lib/rcc/rcc_simulator.mli: Bcclb_bcc Rcc_algo
