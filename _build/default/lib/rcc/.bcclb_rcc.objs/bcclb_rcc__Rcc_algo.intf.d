lib/rcc/rcc_algo.mli: Bcclb_bcc
