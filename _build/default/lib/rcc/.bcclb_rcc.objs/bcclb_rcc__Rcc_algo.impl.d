lib/rcc/rcc_algo.ml: Algo Array Bcclb_bcc Bcclb_util Hashtbl Msg View
