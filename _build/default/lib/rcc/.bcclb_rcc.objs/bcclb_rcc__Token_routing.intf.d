lib/rcc/token_routing.mli: Rcc_algo
