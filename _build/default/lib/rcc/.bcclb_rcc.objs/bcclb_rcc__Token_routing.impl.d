lib/rcc/token_routing.ml: Array Bcclb_bcc Bcclb_util Bits Hashtbl Mathx Msg Printf Rcc_algo View
