open Bcclb_bcc

(* The range-parameterised congested clique of Becker et al. [Bec+16],
   described in the paper's §1.3: in each round a vertex may send at most
   [range] DISTINCT messages across its n-1 ports (silence not counted).
   range = 1 is exactly the broadcast model BCC(b); range = n-1 is the
   full congested clique CC(b). The paper cites the fact that problems
   can be provably sensitive to every increment of the range. *)

type ('s, 'o) t = {
  name : string;
  bandwidth : n:int -> int;
  range : n:int -> int;
  rounds : n:int -> int;
  init : View.t -> 's;
  step : 's -> round:int -> inbox:Msg.t array -> 's * Msg.t array;
      (* One message per port; at most [range ~n] distinct non-silent
         values among them. *)
  finish : 's -> inbox:Msg.t array -> 'o;
}

type 'o packed = Packed : ('s, 'o) t -> 'o packed

let pack a = Packed a

let name (Packed a) = a.name
let rounds (Packed a) ~n = a.rounds ~n
let range (Packed a) ~n = a.range ~n

let distinct_messages msgs =
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun m ->
      match m with
      | Msg.Silent -> ()
      | Msg.Word w -> Hashtbl.replace seen (Bcclb_util.Bits.width w, Bcclb_util.Bits.value w) ())
    msgs;
  Hashtbl.length seen

(* Every broadcast algorithm is a range-1 algorithm. *)
let of_broadcast (Algo.Packed a) =
  Packed
    { name = a.Algo.name;
      bandwidth = a.Algo.bandwidth;
      range = (fun ~n:_ -> 1);
      rounds = a.Algo.rounds;
      init = a.Algo.init;
      step =
        (fun s ~round ~inbox ->
          let s', msg = a.Algo.step s ~round ~inbox in
          (s', Array.make (Array.length inbox) msg));
      finish = a.Algo.finish }
