(** TokenRouting: the executable range-sensitivity demonstration for the
    RCC(b, r) spectrum of §1.3/[Bec+16]. Every vertex owes every other a
    distinct ⌈log₂ n⌉-bit token (pseudo-randomly derived from the ID
    pair, hence locally checkable). Serving r recipients per round gives
    ⌈(n−1)/r⌉ rounds — 1 round at the CC end (r = n−1), n−1 rounds at the
    BCC end (r = 1), matching the information floor (n−1)/r exactly. *)

val token : n:int -> src:int -> dst:int -> int
(** The token [src] owes [dst]. *)

val token_width : n:int -> int

val rounds_needed : n:int -> r:int -> int
(** ⌈(n−1)/r⌉. *)

val algo : r:int -> unit -> bool Rcc_algo.packed
(** Each vertex outputs whether it received a correct token from every
    other vertex (system AND = protocol succeeded).
    @raise Invalid_argument for r < 1 or on KT-0 instances. *)
