(** Synchronous simulator for RCC(b, r) algorithms on BCC instances.
    Enforces both the bandwidth and the range constraint each round. *)

type 'o result = {
  outputs : 'o array;
  rounds_used : int;
  max_distinct : int;  (** Largest per-round distinct-message count seen. *)
}

val run : ?seed:int -> 'o Rcc_algo.packed -> Bcclb_bcc.Instance.t -> 'o result
(** @raise Invalid_argument on bandwidth or range violations. *)
