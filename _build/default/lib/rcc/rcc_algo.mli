(** Vertex algorithms for the range-parameterised congested clique
    RCC(b, r) of Becker et al. [Bec+16] (paper §1.3): at most [range]
    distinct non-silent messages per round, each of at most [bandwidth]
    bits. range = 1 is BCC(b); range = n−1 is CC(b). *)

type ('s, 'o) t = {
  name : string;
  bandwidth : n:int -> int;
  range : n:int -> int;
  rounds : n:int -> int;
  init : Bcclb_bcc.View.t -> 's;
  step : 's -> round:int -> inbox:Bcclb_bcc.Msg.t array -> 's * Bcclb_bcc.Msg.t array;
      (** One message per port (index = own port); the simulator rejects
          more than [range ~n] distinct non-silent values. *)
  finish : 's -> inbox:Bcclb_bcc.Msg.t array -> 'o;
}

type 'o packed = Packed : ('s, 'o) t -> 'o packed

val pack : ('s, 'o) t -> 'o packed
val name : 'o packed -> string
val rounds : 'o packed -> n:int -> int
val range : 'o packed -> n:int -> int

val distinct_messages : Bcclb_bcc.Msg.t array -> int
(** Number of distinct non-silent values (the quantity the range bounds). *)

val of_broadcast : 'o Bcclb_bcc.Algo.packed -> 'o packed
(** Embed a BCC(b) algorithm as a range-1 RCC algorithm. *)
