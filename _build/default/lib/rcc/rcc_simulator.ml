open Bcclb_bcc

type 'o result = { outputs : 'o array; rounds_used : int; max_distinct : int }

let run ?(seed = 0) (Rcc_algo.Packed a) inst =
  let n = Instance.n inst in
  let b = a.Rcc_algo.bandwidth ~n in
  let r = a.Rcc_algo.range ~n in
  let total_rounds = a.Rcc_algo.rounds ~n in
  let states = Array.init n (fun v -> a.Rcc_algo.init (Instance.view ~coins_seed:seed inst v)) in
  let max_distinct = ref 0 in
  (* outbox.(v).(p): what v sends through its port p this round. *)
  let current_inbox = ref (Array.init n (fun _ -> Array.make (n - 1) Msg.silent)) in
  for round = 1 to total_rounds do
    let outbox = Array.make n [||] in
    for v = 0 to n - 1 do
      let state', msgs = a.Rcc_algo.step states.(v) ~round ~inbox:!current_inbox.(v) in
      if Array.length msgs <> n - 1 then
        invalid_arg "Rcc_simulator.run: one message per port required";
      Array.iter
        (fun m ->
          if Msg.width m > b then invalid_arg "Rcc_simulator.run: bandwidth violation")
        msgs;
      let distinct = Rcc_algo.distinct_messages msgs in
      if distinct > r then
        invalid_arg
          (Printf.sprintf "Rcc_simulator.run: vertex %d sent %d distinct messages (range %d) in round %d"
             v distinct r round);
      max_distinct := max !max_distinct distinct;
      states.(v) <- state';
      outbox.(v) <- msgs
    done;
    (* Vertex u hears, on its port q, what the peer v sent through v's
       port toward u. *)
    current_inbox :=
      Array.init n (fun u ->
          Array.init (n - 1) (fun q ->
              let v = Instance.peer inst u q in
              outbox.(v).(Instance.port_to inst v u)))
  done;
  let outputs = Array.init n (fun v -> a.Rcc_algo.finish states.(v) ~inbox:!current_inbox.(v)) in
  { outputs; rounds_used = total_rounds; max_distinct = !max_distinct }
