open Bcclb_bcc
open Bcclb_util

(* TokenRouting: the range-sensitivity demonstration of §1.3. Vertex i
   holds a distinct L-bit token for every other vertex j (derived
   pseudo-randomly from the ID pair, so correctness is locally
   checkable); every j must learn its token from every i.

   With range r, a vertex can serve r recipients per round (r distinct
   messages), so ceil((n-1)/r) rounds suffice; with r = n-1 (the full
   congested clique) one round suffices; with r = 1 (broadcast) the same
   schedule degenerates to n-1 rounds — a smooth interpolation between
   the CC and BCC ends of the spectrum, mirroring the sensitivity result
   of [Bec+16] that the paper cites. The information-theoretic floor is
   (n-1)·L / (r·L) = (n-1)/r rounds, so the schedule is round-optimal in
   this model. *)

let token_width ~n = Mathx.ceil_log2 (max 2 n)

(* The token vertex [src] owes vertex [dst], keyed by IDs. *)
let token ~n ~src ~dst =
  let w = token_width ~n in
  let h = (src * 2654435761) lxor (dst * 40503) lxor ((src + dst) lsl 7) in
  (h land max_int) mod (1 lsl w)

type state = {
  view : View.t;
  r : int;
  received : (int, int) Hashtbl.t;  (* sender id -> token *)
}

let rounds_needed ~n ~r = ((n - 1) + r - 1) / r

(* KT-1: recipients are served in ID order, r per round. *)
let algo ~r () =
  if r < 1 then invalid_arg "Token_routing.algo: range must be >= 1";
  let name = Printf.sprintf "token-routing[r=%d]" r in
  let init view =
    match View.kt1 view with
    | None -> invalid_arg (name ^ ": needs a KT-1 instance")
    | Some _ -> { view; r; received = Hashtbl.create 16 }
  in
  let absorb st ~round ~inbox =
    (* Round [round]'s inbox carries tokens addressed to us by senders
       that scheduled us in round [round-1]. We are recipient index
       port-of-us at the sender; but symmetric scheduling makes decoding
       easy: sender s serves recipients with indices (round-2)*r ..
       (round-2)*r + r - 1 in ITS port order, so we accept any non-silent
       message: it is our token from that sender. *)
    ignore round;
    Array.iteri
      (fun p m ->
        match m with
        | Msg.Silent -> ()
        | Msg.Word w -> Hashtbl.replace st.received (View.neighbor_id st.view p) (Bits.value w))
      inbox
  in
  let step st ~round ~inbox =
    absorb st ~round ~inbox;
    let n = View.n st.view in
    let w = token_width ~n in
    let lo = (round - 1) * st.r and hi = (round * st.r) - 1 in
    let msgs =
      Array.init (View.num_ports st.view) (fun p ->
          if p >= lo && p <= hi then
            Msg.of_int ~width:w (token ~n ~src:(View.id st.view) ~dst:(View.neighbor_id st.view p))
          else Msg.silent)
    in
    (st, msgs)
  in
  let finish st ~inbox =
    absorb st ~round:0 ~inbox;
    (* Verify every sender's token arrived and is correct. *)
    let n = View.n st.view in
    let me = View.id st.view in
    Array.for_all
      (fun sender ->
        sender = me
        ||
        match Hashtbl.find_opt st.received sender with
        | Some v -> v = token ~n ~src:sender ~dst:me
        | None -> false)
      (View.all_ids st.view)
  in
  Rcc_algo.pack
    { Rcc_algo.name;
      bandwidth = (fun ~n -> token_width ~n);
      range = (fun ~n:_ -> r);
      rounds = (fun ~n -> rounds_needed ~n ~r);
      init;
      step;
      finish }
