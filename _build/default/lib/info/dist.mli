(** Finite probability distributions (normalised weight tables) — the μ
    of Yao's minimax arguments and of the Theorem 4.5 hard distribution. *)

type 'a t

val of_weighted : ('a * float) list -> 'a t
(** Normalise; repeated atoms accumulate.
    @raise Invalid_argument on negative weights or zero total. *)

val uniform : 'a list -> 'a t
(** Uniform over the multiset (duplicates accumulate). *)

val of_samples : 'a list -> 'a t
(** Empirical distribution of samples (alias of {!uniform}). *)

val prob : 'a t -> 'a -> float
(** 0 outside the support. *)

val support : 'a t -> 'a list
val size : 'a t -> int

val fold : ('a -> float -> 'b -> 'b) -> 'a t -> 'b -> 'b

val map_support : ('a -> 'b) -> 'a t -> 'b t
(** Pushforward distribution (non-injective maps accumulate mass). *)

val total : 'a t -> float
(** 1.0 up to rounding; exposed for tests. *)
