let log2 = Bcclb_util.Mathx.log2

let term p = if p <= 0.0 then 0.0 else -.p *. log2 p

let entropy dist = Dist.fold (fun _ p acc -> acc +. term p) dist 0.0

(* Joint distribution over pairs, built from weighted (x, y) pairs. *)
let joint pairs = Dist.of_weighted pairs

let marginal_x joint = Dist.map_support fst joint
let marginal_y joint = Dist.map_support snd joint

let joint_entropy j = entropy j

(* H(X|Y) = H(X,Y) - H(Y): the chain rule, numerically robust. *)
let conditional_entropy j = joint_entropy j -. entropy (marginal_y j)

(* I(X;Y) = H(X) + H(Y) - H(X,Y). *)
let mutual_information j = entropy (marginal_x j) +. entropy (marginal_y j) -. joint_entropy j

(* Convenience: exact I(X; f(X)) for X uniform over [xs] and a
   deterministic map f — the shape of Theorem 4.5's computation where X
   is Alice's partition and f is the protocol transcript. *)
let mutual_information_fn xs f =
  mutual_information (joint (List.map (fun x -> ((x, f x), 1.0)) xs))

let binary_entropy p =
  if p < 0.0 || p > 1.0 then invalid_arg "Entropy.binary_entropy: probability out of range";
  term p +. term (1.0 -. p)

(* I(X; Y | Z) from a joint distribution over ((x, y), z) triples:
   I(X;Y|Z) = H(X,Z) + H(Y,Z) - H(Z) - H(X,Y,Z). *)
let conditional_mutual_information triples =
  let d = Dist.of_weighted triples in
  let hxyz = entropy d in
  let hxz = entropy (Dist.map_support (fun ((x, _y), z) -> (x, z)) d) in
  let hyz = entropy (Dist.map_support (fun ((_x, y), z) -> (y, z)) d) in
  let hz = entropy (Dist.map_support snd d) in
  hxz +. hyz -. hz -. hxyz
