(** Exact Shannon entropy and mutual information over finite
    distributions (§2, "Information Theory"; used by Theorem 4.5's
    argument I(P_A; Π) = H(P_A) − H(P_A | Π) = Ω(n log n)).

    All quantities are in bits (log base 2). *)

val entropy : 'a Dist.t -> float
(** H(X). *)

val joint : (('a * 'b) * float) list -> ('a * 'b) Dist.t
(** Build a joint distribution from weighted pairs. *)

val marginal_x : ('a * 'b) Dist.t -> 'a Dist.t
val marginal_y : ('a * 'b) Dist.t -> 'b Dist.t

val joint_entropy : ('a * 'b) Dist.t -> float
(** H(X, Y). *)

val conditional_entropy : ('a * 'b) Dist.t -> float
(** H(X | Y), via the chain rule H(X,Y) − H(Y). *)

val mutual_information : ('a * 'b) Dist.t -> float
(** I(X; Y) = H(X) + H(Y) − H(X,Y) ≥ 0. *)

val mutual_information_fn : 'a list -> ('a -> 'b) -> float
(** I(X; f(X)) for X uniform over the list and f deterministic — equals
    H(f(X)); the form in which transcript information is computed. *)

val binary_entropy : float -> float
(** H(p) = −p log p − (1−p) log(1−p). @raise Invalid_argument outside [0,1]. *)

val conditional_mutual_information : ((('x * 'y) * 'z) * float) list -> float
(** I(X; Y | Z) from weighted ((x, y), z) triples (§2's conditional
    mutual information); ≥ 0, and = I(X;Y) when Z is constant. *)
