lib/info/entropy.ml: Bcclb_util Dist List
