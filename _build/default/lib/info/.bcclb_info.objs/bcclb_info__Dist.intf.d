lib/info/dist.mli:
