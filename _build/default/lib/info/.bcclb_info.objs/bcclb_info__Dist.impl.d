lib/info/dist.ml: Hashtbl List Option
