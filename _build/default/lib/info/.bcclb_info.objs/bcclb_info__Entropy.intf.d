lib/info/entropy.mli: Dist
