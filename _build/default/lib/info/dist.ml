(* Finite probability distributions over an arbitrary (hashable) type,
   stored as normalised weights. *)

type 'a t = ('a, float) Hashtbl.t

let of_weighted pairs =
  let tbl = Hashtbl.create 64 in
  let total = ref 0.0 in
  List.iter
    (fun (x, w) ->
      if w < 0.0 then invalid_arg "Dist.of_weighted: negative weight";
      total := !total +. w;
      Hashtbl.replace tbl x (w +. Option.value ~default:0.0 (Hashtbl.find_opt tbl x)))
    pairs;
  if !total <= 0.0 then invalid_arg "Dist.of_weighted: total weight must be positive";
  Hashtbl.filter_map_inplace (fun _ w -> if w = 0.0 then None else Some (w /. !total)) tbl;
  tbl

let uniform xs = of_weighted (List.map (fun x -> (x, 1.0)) xs)

let of_samples xs = uniform xs

let prob t x = Option.value ~default:0.0 (Hashtbl.find_opt t x)

let support t = Hashtbl.fold (fun x _ acc -> x :: acc) t []

let size t = Hashtbl.length t

let fold f t init = Hashtbl.fold f t init

let map_support f t =
  of_weighted (Hashtbl.fold (fun x w acc -> (f x, w) :: acc) t [])

let total t = Hashtbl.fold (fun _ w acc -> acc +. w) t 0.0
