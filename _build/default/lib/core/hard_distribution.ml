open Bcclb_bignum
open Bcclb_bcc

(* The hard distribution μ of §3.1: probability mass 1/2 spread uniformly
   over all one-cycle instances V1, and 1/2 over all two-cycle instances
   V2. Per Lemma 3.9 an individual V1 instance carries Θ(log n) times the
   mass of a V2 instance. Errors are accounted exactly in rationals. *)

type error_report = {
  n : int;
  algo_name : string;
  v1_total : int;
  v1_errors : int;
  v2_total : int;
  v2_errors : int;
  error : Ratio.t;
}

let error_float r = Ratio.to_float r.error

let decide ?(seed = 0) algo inst =
  Problems.system_decision (Simulator.run ~seed algo inst).Simulator.outputs

(* Exact distributional error of a decision algorithm over μ: runs the
   algorithm on EVERY census instance. *)
let exact_error ?(seed = 0) algo ~n =
  let v1_errors = ref 0 and v1_total = ref 0 in
  Census.iter_one_cycles ~n (fun s ->
      incr v1_total;
      if not (decide ~seed algo (Census.to_instance s ~n)) then incr v1_errors);
  let v2_errors = ref 0 and v2_total = ref 0 in
  Census.iter_two_cycles ~n (fun s ->
      incr v2_total;
      if decide ~seed algo (Census.to_instance s ~n) then incr v2_errors);
  let half = Ratio.of_ints 1 2 in
  let error =
    Ratio.add
      (Ratio.mul half (Ratio.of_ints !v1_errors !v1_total))
      (Ratio.mul half (Ratio.of_ints !v2_errors !v2_total))
  in
  { n; algo_name = Algo.name algo; v1_total = !v1_total; v1_errors = !v1_errors;
    v2_total = !v2_total; v2_errors = !v2_errors; error }

(* Sampled variant for larger n, drawing YES/NO with probability 1/2 and
   instances uniformly within each side. *)
let sampled_error ?(seed = 0) algo ~n ~trials rng =
  let errors = ref 0 in
  for trial = 1 to trials do
    let yes = Bcclb_util.Rng.bool rng in
    let g =
      if yes then Bcclb_graph.Gen.random_cycle rng n else Bcclb_graph.Gen.random_two_cycles rng n
    in
    let inst = Instance.kt0_circulant g in
    if decide ~seed:(seed + trial) algo inst <> yes then incr errors
  done;
  float_of_int !errors /. float_of_int trials

(* The warm-up star distribution of Theorem 3.5: mass 1/2 on a fixed
   one-cycle instance I, the rest uniform over the crossings I(e, e') of
   an independent edge set S of size floor(n/3) (we take every third
   cycle edge). Returns (YES instance, NO instances). *)
let star_support ~n =
  if n < 9 then invalid_arg "Hard_distribution.star_support: need n >= 9";
  let base = Array.init n Fun.id in
  let positions = List.filter (fun i -> i mod 3 = 0 && i + 3 <= n) (Bcclb_util.Arrayx.range 0 n) in
  let crossings = ref [] in
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          if i < j then begin
            let len1 = j - i and len2 = n - (j - i) in
            if len1 >= 3 && len2 >= 3 then crossings := Census.cross_one_cycle base i j :: !crossings
          end)
        positions)
    positions;
  (Bcclb_graph.Cycles.make [ base ], List.rev !crossings)

let star_error ?(seed = 0) algo ~n =
  let yes, nos = star_support ~n in
  let half = Ratio.of_ints 1 2 in
  let yes_err = if decide ~seed algo (Census.to_instance yes ~n) then Ratio.zero else Ratio.one in
  let no_errs = List.filter (fun s -> decide ~seed algo (Census.to_instance s ~n)) nos in
  Ratio.add (Ratio.mul half yes_err)
    (Ratio.mul half (Ratio.of_ints (List.length no_errs) (List.length nos)))
