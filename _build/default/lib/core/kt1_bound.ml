open Bcclb_comm

(* Quantitative content of §4 (Theorem 4.4), packaged for the harness. *)

type rank_row = {
  n : int;
  dimension : int;  (* matrix dimension = B_n or r *)
  rank : int;  (* computed rank (mod p certificate) *)
  full : bool;
  lb_bits : float;  (* log2 rank *)
  ub_bits : int;  (* measured bits of the trivial protocol, worst case over samples *)
}

(* E5/E6 for Partition: verify rank(M^n) = B_n and sandwich the bound
   with the trivial protocol's measured cost. *)
let partition_rank_row ~n rng ~samples =
  let m = Bcclb_linalg.Partition_matrix.m_matrix ~n in
  let dim = Array.length m in
  let rank = Bcclb_linalg.Zmod.rank (Bcclb_linalg.Zmod.create ()) m in
  let spec = Upper_bounds.partition_protocol ~n in
  let worst = ref 0 in
  for _ = 1 to samples do
    let pa = Bcclb_partition.Set_partition.random_crp rng ~n in
    let pb = Bcclb_partition.Set_partition.random_crp rng ~n in
    let r = Protocol.run spec pa pb in
    worst := max !worst (Protocol.total_bits r)
  done;
  { n; dimension = dim; rank; full = rank = dim;
    lb_bits = Bcclb_util.Mathx.log2 (float_of_int (max 1 rank)); ub_bits = !worst }

let two_partition_rank_row ~n rng ~samples =
  let m = Bcclb_linalg.Partition_matrix.e_matrix ~n in
  let dim = Array.length m in
  let rank = Bcclb_linalg.Zmod.rank (Bcclb_linalg.Zmod.create ()) m in
  let spec = Upper_bounds.partition_protocol ~n in
  let worst = ref 0 in
  for _ = 1 to samples do
    let pa = Bcclb_partition.Two_partition.random rng ~n in
    let pb = Bcclb_partition.Two_partition.random rng ~n in
    let r = Protocol.run spec pa pb in
    worst := max !worst (Protocol.total_bits r)
  done;
  { n; dimension = dim; rank; full = rank = dim;
    lb_bits = Bcclb_util.Mathx.log2 (float_of_int (max 1 rank)); ub_bits = !worst }

(* Closed-form series for larger n (rank facts proven in the paper, so
   lb = log2 B_n resp. log2 r without building the matrix). *)
type series_row = { n : int; lb_bits : float; ub_bits : float }

let partition_series ~n =
  { n;
    lb_bits = Rank_bound.partition_bits ~n;
    ub_bits = float_of_int ((n * Upper_bounds.label_width ~n) + 1) }

let two_partition_series ~n =
  { n;
    lb_bits = Rank_bound.two_partition_bits ~n;
    ub_bits = float_of_int ((n * Upper_bounds.label_width ~n) + 1) }

(* E8: the section 4.3 pipeline measured end to end. Solve TwoPartition
   instances through a real KT-1 BCC(1) Connectivity algorithm on the
   2-regular MultiCycle gadget and account the communication. *)
type pipeline_row = {
  n : int;  (* ground set size; the gadget has 2n vertices *)
  gadget_n : int;
  bcc_rounds : int;
  measured_bits : int;
  predicted_bits : int;  (* 2 * gadget_n * rounds: 2 bits per char *)
  correct : bool;  (* answers matched the join truth on all samples *)
  implied_round_lb : float;  (* lb_bits / (2 * gadget_n) *)
}

let pipeline_row ~n rng ~samples =
  let algo =
    Bcclb_algorithms.Discovery.connectivity ~knowledge:Bcclb_bcc.Instance.KT1 ~max_degree:2
  in
  let correct = ref true in
  let bits = ref 0 and rounds = ref 0 and gadget_n = ref 0 in
  for _ = 1 to samples do
    let pa = Bcclb_partition.Two_partition.random rng ~n in
    let pb = Bcclb_partition.Two_partition.random rng ~n in
    let truth =
      Bcclb_partition.Set_partition.is_coarsest (Bcclb_partition.Set_partition.join pa pb)
    in
    let r = Bcc_simulation.two_partition_via_bcc algo pa pb in
    if r.Bcc_simulation.answer <> truth then correct := false;
    bits := r.Bcc_simulation.bits;
    rounds := r.Bcc_simulation.bcc_rounds;
    gadget_n := r.Bcc_simulation.gadget_n
  done;
  let lb_bits = Rank_bound.two_partition_bits ~n in
  { n;
    gadget_n = !gadget_n;
    bcc_rounds = !rounds;
    measured_bits = !bits;
    predicted_bits = 2 * !gadget_n * !rounds;
    correct = !correct;
    implied_round_lb = Rank_bound.kt1_round_lb ~bits_per_round:(2 * !gadget_n) lb_bits }
