open Bcclb_partition
open Bcclb_comm
open Bcclb_info

(* Theorem 4.5, executed exactly: under the hard distribution (P_A
   uniform over all B_n partitions, P_B the finest partition), any
   eps-error protocol for PartitionComp has I(P_A; Pi) >= (1-eps) H(P_A).
   At small n we enumerate the entire input space, build the exact joint
   distribution of (P_A, transcript), and compute mutual information with
   no sampling error. *)

type row = {
  n : int;
  epsilon : float;
  h_pa : float;  (* = log2 B_n *)
  mi : float;  (* I(P_A; Pi), exact *)
  bound : float;  (* (1 - eps) * H(P_A) *)
  holds : bool;
  errors : int;  (* inputs on which the corrupted protocol errs *)
  total : int;
}

(* An eps-error protocol built from the trivial PartitionComp protocol by
   corrupting the conversation on (approximately) an eps-fraction of
   Alice's inputs: corrupted inputs all produce the same constant
   transcript (and hence a wrong output on all but at most one of
   them). This is the adversarially cheapest way to save information,
   which is what makes the bound tight-ish rather than vacuous. *)
let corrupted_transcript ~n ~epsilon pa =
  let spec = Upper_bounds.partition_comp_protocol ~n in
  let bn = Set_partition.count ~n in
  let cutoff = int_of_float (epsilon *. float_of_int bn) in
  (* Corrupt the first [cutoff] partitions in rank order. *)
  if Set_partition.rank pa < cutoff then "corrupted"
  else Protocol.transcript_string (Protocol.run spec pa (Set_partition.finest n))

let row ~n ~epsilon =
  if n > 10 then invalid_arg "Info_bound.row: exhaustive enumeration limited to n <= 10";
  let all = Set_partition.all ~n in
  let total = List.length all in
  let cutoff = int_of_float (epsilon *. float_of_int total) in
  (* The corrupted protocol outputs a fixed partition on corrupted
     inputs; it errs on each unless that input happens to match. *)
  let errors =
    List.length (List.filter (fun pa -> Set_partition.rank pa < cutoff && Set_partition.rank pa <> 0) all)
  in
  let h_pa = Entropy.entropy (Dist.uniform all) in
  let mi = Entropy.mutual_information_fn all (corrupted_transcript ~n ~epsilon) in
  let eps_actual = float_of_int errors /. float_of_int total in
  let bound = (1.0 -. eps_actual) *. h_pa in
  (* The paper's inequality: MI >= H(P_A) - eps * H(P_A). Our corrupted
     inputs still carry a bit of information ("corrupted" vs not), so MI
     can slightly exceed the bound; holds means MI >= bound - 1e-9. *)
  { n; epsilon = eps_actual; h_pa; mi; bound; holds = mi >= bound -. 1e-9; errors; total }

(* The same computation with the transcript produced by the actual BCC
   simulation (E9's second series): the conversation of the section 4.3
   protocol obtained from a KT-1 ConnectedComponents algorithm. The
   transcript is all broadcast characters in ID order per round. *)
let bcc_transcript algo pa pb =
  let g = Reduction_graph.gadget pa pb in
  let inst = Bcclb_bcc.Instance.kt1_of_graph g in
  let r = Bcclb_bcc.Simulator.run algo inst in
  String.concat "|"
    (Array.to_list (Array.map Bcclb_bcc.Transcript.sent_string r.Bcclb_bcc.Simulator.transcripts))

type bcc_row = { n : int; h_pa : float; mi : float; comp_correct : bool }

let bcc_row ~n =
  if n > 6 then invalid_arg "Info_bound.bcc_row: exhaustive enumeration limited to n <= 6";
  let algo =
    (* The gadget has part-vertices of degree up to n: use a min-label
       components algorithm, which needs no degree bound. *)
    Bcclb_algorithms.Min_label.components ~phases:(4 * n) ()
  in
  let all = Set_partition.all ~n in
  let pb = Set_partition.finest n in
  let comp_correct = ref true in
  List.iter
    (fun pa ->
      let labels, _ = Bcc_simulation.partition_comp_via_bcc algo pa pb in
      if not (Set_partition.equal labels (Set_partition.join pa pb)) then comp_correct := false)
    all;
  let h_pa = Entropy.entropy (Dist.uniform all) in
  let mi = Entropy.mutual_information_fn all (fun pa -> bcc_transcript algo pa pb) in
  { n; h_pa; mi; comp_correct = !comp_correct }
