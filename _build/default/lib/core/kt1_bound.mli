(** Experiment kernels for the deterministic KT-1 lower bound (§4,
    Theorem 4.4): rank certificates for Mⁿ and Eⁿ (E5), the
    Ω(n log n)/O(n log n) communication sandwich (E6), and the measured
    §4.3 reduction pipeline (E8). *)

type rank_row = {
  n : int;
  dimension : int;
  rank : int;
  full : bool;  (** rank = dimension certifies Theorem 2.3 / Lemma 4.1. *)
  lb_bits : float;
  ub_bits : int;  (** Worst measured cost of the trivial protocol. *)
}

val partition_rank_row : n:int -> Bcclb_util.Rng.t -> samples:int -> rank_row
(** Builds the Bₙ × Bₙ matrix Mⁿ; feasible to n ≈ 7. *)

val two_partition_rank_row : n:int -> Bcclb_util.Rng.t -> samples:int -> rank_row
(** Builds Eⁿ; feasible to n ≈ 10. @raise Invalid_argument on odd n. *)

type series_row = { n : int; lb_bits : float; ub_bits : float }

val partition_series : n:int -> series_row
(** Closed-form sandwich for any n: log₂ Bₙ vs n·⌈log₂ n⌉ + 1. *)

val two_partition_series : n:int -> series_row

type pipeline_row = {
  n : int;
  gadget_n : int;
  bcc_rounds : int;
  measured_bits : int;
  predicted_bits : int;  (** 2 · gadget_n · rounds (2 bits/character). *)
  correct : bool;
  implied_round_lb : float;
      (** The Theorem 4.4 statement instantiated: rounds any KT-1 BCC(1)
          algorithm needs, = log₂ r / (2·gadget_n) = Ω(log n). *)
}

val pipeline_row : n:int -> Bcclb_util.Rng.t -> samples:int -> pipeline_row
(** Run TwoPartition → MultiCycle gadget → KT-1 discovery algorithm →
    measured 2-party communication, checking answers against the join. *)
