open Bcclb_bcc
open Bcclb_graph

(* Lemma 3.4, checked by execution (E4): if the endpoints of two
   independent input edges broadcast pairwise-equal sequences during t
   rounds, then the genuinely rewired crossed instance (Definition 3.3,
   via Instance.cross) is execution-indistinguishable from the original:
   every vertex has the same initial knowledge and transcript in both. *)

type report = {
  instances : int;
  crossable_pairs : int;  (* independent pairs examined *)
  same_label_pairs : int;  (* pairs satisfying Lemma 3.4's hypothesis *)
  indistinguishable : int;  (* of those, how many were indistinguishable *)
  violations : int;  (* must be 0 for the lemma to hold *)
  distinguishable_diff_label : int;  (* diagnostic: distinguishable pairs with different labels *)
}

let directed_edges structure =
  List.concat_map
    (fun cyc ->
      let k = Array.length cyc in
      List.init k (fun i -> (cyc.(i), cyc.((i + 1) mod k))))
    (Cycles.cycles structure)

let check ?(seed = 0) algo ~n ~instances ~wiring rng =
  let crossable = ref 0 and same_label = ref 0 and indist = ref 0 in
  let violations = ref 0 and diff_dist = ref 0 in
  for _ = 1 to instances do
    let g = Gen.random_cycle rng n in
    let inst =
      match wiring with
      | `Circulant -> Instance.kt0_circulant g
      | `Random -> Instance.kt0_random rng g
    in
    let result = Simulator.run ~seed algo inst in
    let sent v = Transcript.sent_string result.Simulator.transcripts.(v) in
    match Cycles.of_graph g with
    | None -> ()
    | Some s ->
      let edges = Array.of_list (directed_edges s) in
      let m = Array.length edges in
      for i = 0 to m - 1 do
        for j = i + 1 to m - 1 do
          let (v1, u1) = edges.(i) and (v2, u2) = edges.(j) in
          if Instance.independent inst (v1, u1) (v2, u2) then begin
            incr crossable;
            let crossed = Instance.cross inst (v1, u1) (v2, u2) in
            let ind = Simulator.indistinguishable ~seed algo inst crossed in
            if sent v1 = sent v2 && sent u1 = sent u2 then begin
              incr same_label;
              if ind then incr indist else incr violations
            end
            else if not ind then incr diff_dist
          end
        done
      done
  done;
  { instances;
    crossable_pairs = !crossable;
    same_label_pairs = !same_label;
    indistinguishable = !indist;
    violations = !violations;
    distinguishable_diff_label = !diff_dist }
