lib/core/kt0_bound.mli: Bcclb_bcc Bcclb_bignum Bcclb_util
