lib/core/indist_graph.ml: Array Bcclb_bignum Bcclb_graph Bcclb_util Census Cycles Hashtbl Hopcroft_karp Int Labels List Option
