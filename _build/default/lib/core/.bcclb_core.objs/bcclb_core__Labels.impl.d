lib/core/labels.ml: Array Bcclb_bcc Bcclb_graph Census Cycles Hashtbl List Option Simulator Transcript
