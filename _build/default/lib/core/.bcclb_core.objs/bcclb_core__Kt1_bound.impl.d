lib/core/kt1_bound.ml: Array Bcc_simulation Bcclb_algorithms Bcclb_bcc Bcclb_comm Bcclb_linalg Bcclb_partition Bcclb_util Protocol Rank_bound Upper_bounds
