lib/core/census.ml: Array Bcclb_bcc Bcclb_graph Bcclb_util Cycles Fun Hashtbl Int List Option
