lib/core/info_bound.mli:
