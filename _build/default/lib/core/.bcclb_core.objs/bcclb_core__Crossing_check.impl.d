lib/core/crossing_check.ml: Array Bcclb_bcc Bcclb_graph Cycles Gen Instance List Simulator Transcript
