lib/core/hard_distribution.mli: Bcclb_bcc Bcclb_bignum Bcclb_graph Bcclb_util
