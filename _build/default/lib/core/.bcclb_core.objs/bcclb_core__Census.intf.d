lib/core/census.mli: Bcclb_bcc Bcclb_graph
