lib/core/crossing_check.mli: Bcclb_bcc Bcclb_util
