lib/core/info_bound.ml: Array Bcc_simulation Bcclb_algorithms Bcclb_bcc Bcclb_comm Bcclb_info Bcclb_partition Dist Entropy List Protocol Reduction_graph Set_partition String Upper_bounds
