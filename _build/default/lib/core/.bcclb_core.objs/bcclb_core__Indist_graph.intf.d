lib/core/indist_graph.mli: Bcclb_bcc Bcclb_bignum Bcclb_graph Bcclb_util
