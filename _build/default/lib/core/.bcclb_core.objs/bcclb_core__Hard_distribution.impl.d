lib/core/hard_distribution.ml: Algo Array Bcclb_bcc Bcclb_bignum Bcclb_graph Bcclb_util Census Fun Instance List Problems Ratio Simulator
