lib/core/labels.mli: Bcclb_bcc Bcclb_graph Hashtbl
