lib/core/kt0_bound.ml: Algo Array Bcclb_bcc Bcclb_bignum Bcclb_graph Bcclb_util Census Combi Hard_distribution Indist_graph Labels Nat
