lib/core/kt1_bound.mli: Bcclb_util
