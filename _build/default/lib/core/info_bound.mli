(** Experiment kernel for Theorem 4.5 (E9): exact mutual information
    between Alice's uniform partition P_A and the protocol transcript Π
    for ε-error PartitionComp protocols, under the hard distribution
    (P_B fixed to the finest partition, so P_A ∨ P_B = P_A and the
    transcript must essentially reveal P_A). *)

type row = {
  n : int;
  epsilon : float;  (** Realised error fraction of the corrupted protocol. *)
  h_pa : float;  (** H(P_A) = log₂ Bₙ. *)
  mi : float;  (** I(P_A; Π), exact over all Bₙ inputs. *)
  bound : float;  (** (1 − ε)·H(P_A), the Theorem 4.5 floor. *)
  holds : bool;
  errors : int;
  total : int;
}

val row : n:int -> epsilon:float -> row
(** The trivial PartitionComp protocol corrupted on an ε-fraction of
    inputs (all corrupted inputs share one constant transcript — the
    information-cheapest way to err). @raise Invalid_argument for n > 10. *)

type bcc_row = {
  n : int;
  h_pa : float;
  mi : float;  (** Information carried by the §4.3 simulation transcript. *)
  comp_correct : bool;  (** The pipeline recovered P_A ∨ P_B on every input. *)
}

val bcc_row : n:int -> bcc_row
(** Same computation with Π = the broadcast transcript of a real KT-1
    ConnectedComponents algorithm run on the G(P_A, P_B) gadget; since
    the algorithm is errorless, I(P_A; Π) = H(P_A) exactly.
    @raise Invalid_argument for n > 6 (enumerates Bₙ pipelines). *)
