(** Lemma 3.4 checked by execution (E4): crossings of same-label
    independent edge pairs produce instances whose per-vertex states
    (initial knowledge + transcript) are identical to the original's —
    over genuinely rewired ports, not just at the census level. *)

type report = {
  instances : int;
  crossable_pairs : int;
  same_label_pairs : int;
  indistinguishable : int;
  violations : int;  (** Same-label pairs that were distinguishable: the
                         lemma asserts this is always 0. *)
  distinguishable_diff_label : int;
}

val check :
  ?seed:int ->
  'o Bcclb_bcc.Algo.packed ->
  n:int ->
  instances:int ->
  wiring:[ `Circulant | `Random ] ->
  Bcclb_util.Rng.t ->
  report
(** Examine every independent directed-edge pair of [instances] random
    one-cycle instances under the given algorithm. *)
