(** The hard distributions of §3 and exact distributional error.

    μ (§3.1): half the mass uniform over all one-cycle instances, half
    over all two-cycle instances. Yao's minimax theorem (Theorem 2.2)
    turns a lower bound on deterministic error under μ into a randomized
    round lower bound — experiment E3 measures that error exactly by
    running a candidate algorithm on every census instance. *)

type error_report = {
  n : int;
  algo_name : string;
  v1_total : int;
  v1_errors : int;  (** One-cycle instances answered NO. *)
  v2_total : int;
  v2_errors : int;  (** Two-cycle instances answered YES. *)
  error : Bcclb_bignum.Ratio.t;  (** Exact error mass under μ. *)
}

val error_float : error_report -> float

val exact_error : ?seed:int -> bool Bcclb_bcc.Algo.packed -> n:int -> error_report
(** Run on every instance of the census (feasible to n ≈ 9). *)

val sampled_error :
  ?seed:int -> bool Bcclb_bcc.Algo.packed -> n:int -> trials:int -> Bcclb_util.Rng.t -> float
(** Monte-Carlo estimate of the μ-error for larger n. *)

val star_support : n:int -> Bcclb_graph.Cycles.t * Bcclb_graph.Cycles.t list
(** The Theorem 3.5 warm-up family: a fixed one-cycle instance and the
    Θ(n²) two-cycle instances obtained by crossing pairs from an
    independent set of ⌊n/3⌋ edges. @raise Invalid_argument for n < 9. *)

val star_error : ?seed:int -> bool Bcclb_bcc.Algo.packed -> n:int -> Bcclb_bignum.Ratio.t
(** Exact error under the star distribution (mass 1/2 on the YES
    instance, 1/2 uniform on its crossings). *)
