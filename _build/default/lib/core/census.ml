open Bcclb_graph

(* Exhaustive enumeration of the instance sets of §3.1:
   V1 = all one-cycle input graphs on [n]  (|V1| = (n-1)!/2),
   V2 = all two-disjoint-cycle input graphs, cycle lengths >= 3.
   Feasible to n = 10 (|V1| = 181440). Instances are canonical
   Cycles.t structures over the shared circulant background wiring
   (see DESIGN.md). *)

(* All distinct cycles on a given vertex set: fix the smallest vertex
   first and quotient reflections by requiring second < last. *)
let iter_cycles_on vertices f =
  let k = Array.length vertices in
  if k < 3 then invalid_arg "Census.iter_cycles_on: need at least 3 vertices";
  let vs = Array.copy vertices in
  Array.sort Int.compare vs;
  let first = vs.(0) in
  let rest = Array.sub vs 1 (k - 1) in
  let used = Array.make (k - 1) false in
  let seq = Array.make k first in
  let rec go depth =
    if depth = k then begin
      if seq.(1) < seq.(k - 1) then f (Array.copy seq)
    end
    else
      for i = 0 to k - 2 do
        if not used.(i) then begin
          used.(i) <- true;
          seq.(depth) <- rest.(i);
          go (depth + 1);
          used.(i) <- false
        end
      done
  in
  go 1

let iter_one_cycles ~n f =
  if n < 3 then invalid_arg "Census.iter_one_cycles: need n >= 3";
  iter_cycles_on (Array.init n Fun.id) (fun seq -> f (Cycles.make [ seq ]))

let one_cycles ~n =
  let acc = ref [] in
  iter_one_cycles ~n (fun s -> acc := s :: !acc);
  Array.of_list (List.rev !acc)

(* Subsets of {1..n-1} of size k-1, combined with vertex 0: enumerating
   the cycle containing 0 ensures each unordered pair of cycles appears
   exactly once. *)
let iter_two_cycles ~n f =
  if n < 6 then invalid_arg "Census.iter_two_cycles: need n >= 6";
  let rec subsets start size acc =
    if size = 0 then begin
      let s = Array.of_list (0 :: List.rev acc) in
      let in_s = Array.make n false in
      Array.iter (fun v -> in_s.(v) <- true) s;
      let complement = Array.of_list (List.filter (fun v -> not in_s.(v)) (Bcclb_util.Arrayx.range 0 n)) in
      iter_cycles_on s (fun c1 -> iter_cycles_on complement (fun c2 -> f (Cycles.make [ c1; c2 ])))
    end
    else
      for v = start to n - 1 do
        subsets (v + 1) (size - 1) (v :: acc)
      done
  in
  for size_with_zero = 3 to n - 3 do
    subsets 1 (size_with_zero - 1) []
  done

let two_cycles ~n =
  let acc = ref [] in
  iter_two_cycles ~n (fun s -> acc := s :: !acc);
  Array.of_list (List.rev !acc)

let to_instance ?ids s ~n = Bcclb_bcc.Instance.kt0_circulant ?ids (Cycles.to_graph ~n s)

(* Structure-level crossing: cross directed edges (c_i, c_{i+1}) and
   (c_j, c_{j+1}) of a one-cycle instance, replacing them by
   (c_i, c_{j+1}) and (c_j, c_{i+1}) — splitting the cycle into the arcs
   c_{i+1}..c_j and c_{j+1}..c_i. Defined when both arcs have length >= 3
   (this implies edge independence on a cycle of length >= 6). *)
let cross_one_cycle cyc i j =
  let k = Array.length cyc in
  let i, j = if i < j then (i, j) else (j, i) in
  if i < 0 || j >= k then invalid_arg "Census.cross_one_cycle: edge index out of range";
  let len1 = j - i and len2 = k - (j - i) in
  if len1 < 3 || len2 < 3 then invalid_arg "Census.cross_one_cycle: arcs must have length >= 3";
  let arc1 = Array.sub cyc (i + 1) (j - i) in
  let arc2 = Array.init len2 (fun idx -> cyc.((j + 1 + idx) mod k)) in
  Cycles.make [ arc1; arc2 ]

(* Crossing one directed edge in each cycle of a two-cycle instance
   merges the cycles: (a_i, a_{i+1}) x (b_j, b_{j+1}) yields the single
   cycle a_{<=i} b_{>j} b_{<=j} a_{>i} ... concretely: follow a up to
   a_i, jump to b_{j+1}, follow b around to b_j, jump back to a_{i+1}. *)
let cross_two_cycles c1 c2 i j =
  let k1 = Array.length c1 and k2 = Array.length c2 in
  if i < 0 || i >= k1 || j < 0 || j >= k2 then invalid_arg "Census.cross_two_cycles: edge index out of range";
  let merged = Array.make (k1 + k2) 0 in
  let pos = ref 0 in
  let push v =
    merged.(!pos) <- v;
    incr pos
  in
  for idx = 0 to i do
    push c1.(idx)
  done;
  (* After a_i comes b_{j+1}, then the rest of b in order, ending at b_j. *)
  for idx = 1 to k2 do
    push c2.((j + idx) mod k2)
  done;
  for idx = i + 1 to k1 - 1 do
    push c1.(idx)
  done;
  Cycles.make [ merged ]

(* |T_i| of Lemma 3.9: two-cycle instances whose smaller cycle has length
   i, counted exactly and compared against the proof's double-counting
   bound |T_i| <= |V1| * n / (i (n - i)). *)
let t_i_counts ~n =
  let counts = Hashtbl.create 8 in
  iter_two_cycles ~n (fun s ->
      let smaller = List.fold_left min n (Cycles.lengths s) in
      Hashtbl.replace counts smaller (1 + Option.value ~default:0 (Hashtbl.find_opt counts smaller)));
  List.sort compare (Hashtbl.fold (fun i c acc -> (i, c) :: acc) counts [])
