(** Exhaustive census of the §3.1 instance sets V₁ (one-cycle input
    graphs) and V₂ (two-disjoint-cycle input graphs) on [n] labelled
    vertices, with the structure-level crossing operations that link them.

    Instances are canonical {!Bcclb_graph.Cycles.t} values over the shared
    circulant background wiring (DESIGN.md): Lemma 3.9's counting and the
    indistinguishability graph of Definition 3.6 live at this level, while
    the full port-rewiring semantics of crossings is exercised separately
    through {!Bcclb_bcc.Instance.cross}. *)

val iter_one_cycles : n:int -> (Bcclb_graph.Cycles.t -> unit) -> unit
(** All (n−1)!/2 one-cycle instances. @raise Invalid_argument for n < 3. *)

val one_cycles : n:int -> Bcclb_graph.Cycles.t array

val iter_two_cycles : n:int -> (Bcclb_graph.Cycles.t -> unit) -> unit
(** All two-cycle instances (both lengths ≥ 3), each exactly once.
    @raise Invalid_argument for n < 6. *)

val two_cycles : n:int -> Bcclb_graph.Cycles.t array

val to_instance : ?ids:int array -> Bcclb_graph.Cycles.t -> n:int -> Bcclb_bcc.Instance.t
(** KT-0 instance of the structure over the circulant background wiring. *)

val cross_one_cycle : int array -> int -> int -> Bcclb_graph.Cycles.t
(** [cross_one_cycle cyc i j]: cross the directed cycle edges
    (cᵢ, cᵢ₊₁) and (cⱼ, cⱼ₊₁), splitting into two cycles. Defined iff
    both arcs have length ≥ 3 — exactly edge independence on a cycle.
    @raise Invalid_argument otherwise. *)

val cross_two_cycles : int array -> int array -> int -> int -> Bcclb_graph.Cycles.t
(** Cross edge i of the first cycle with edge j of the second, merging
    them into one cycle (always independent across disjoint cycles).
    @raise Invalid_argument on bad indices. *)

val t_i_counts : n:int -> (int * int) list
(** Exact |Tᵢ| (two-cycle instances with smaller cycle length i) by
    direct enumeration — the quantity Lemma 3.9's proof double-counts. *)
