(** Bandwidth translation (§1.1): compile any BCC(b) algorithm into a
    BCC(1) algorithm with identical outputs and a
    (b + ⌈log₂(b+1)⌉)-factor round blow-up, by serialising each b-bit
    message as a width header plus payload bits.

    This is the constructive converse of the paper's remark that a
    t-round BCC(1) lower bound is a t/b-round BCC(b) lower bound: if
    BCC(b) could solve Connectivity in t/b rounds, this compiler would
    produce a ~t-round BCC(1) algorithm. It also lets every BCC(log n)
    algorithm in the repository (e.g. {!Bcclb_algorithms.Boruvka}) run —
    and be tested — in the strict BCC(1) model. *)

val compile : 'o Algo.packed -> 'o Algo.packed
(** Output-equivalent BCC(1) algorithm (deterministic inner algorithms
    produce bit-identical outputs; public coins are passed through). *)

val header_bits : b:int -> int
val block_len : b:int -> int
(** Outer rounds per inner round. *)
