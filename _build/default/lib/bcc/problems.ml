open Bcclb_graph

let system_decision outputs = Array.for_all Fun.id outputs

let connectivity_truth g = Graph.is_connected g

(* The TwoCycle promise (§3): a single cycle, or exactly two disjoint
   cycles, every cycle length >= 3. *)
let is_two_cycle_input g =
  match Cycles.of_graph g with
  | None -> false
  | Some s -> Cycles.num_cycles s = 1 || Cycles.num_cycles s = 2

(* The MultiCycle promise (§4): one cycle, or >= 2 cycles each of length
   >= 4 (the paper's gadget produces length >= 4; a single cycle may have
   any length >= 3). *)
let is_multicycle_input g =
  match Cycles.of_graph g with
  | None -> false
  | Some s -> Cycles.num_cycles s = 1 || List.for_all (fun l -> l >= 4) (Cycles.lengths s)

let decision_correct ~truth outputs = system_decision outputs = truth

(* ConnectedComponents correctness: every vertex outputs a label and the
   labelling must induce exactly the partition into components. Labels
   need not be canonical — only the induced partition matters. *)
let components_correct g labels =
  let truth = Graph.components g in
  let n = Graph.n g in
  if Array.length labels <> n then false
  else begin
    let seen = Hashtbl.create n in
    let ok = ref true in
    for v = 0 to n - 1 do
      match Hashtbl.find_opt seen truth.(v) with
      | None -> Hashtbl.add seen truth.(v) labels.(v)
      | Some l -> if l <> labels.(v) then ok := false
    done;
    (* Injectivity across distinct components. *)
    let used = Hashtbl.create n in
    Hashtbl.iter
      (fun _ l -> if Hashtbl.mem used l then ok := false else Hashtbl.add used l ())
      seen;
    !ok
  end

type stats = { trials : int; errors : int }

let error_rate { trials; errors } = if trials = 0 then 0.0 else float_of_int errors /. float_of_int trials

(* Empirical error of a decision algorithm over a generator of
   (instance, truth) pairs. *)
let measure_decision_error ?(seed = 0) algo ~trials gen =
  let errors = ref 0 in
  for trial = 1 to trials do
    let inst, truth = gen trial in
    let result = Simulator.run ~seed:(seed + trial) algo inst in
    if not (decision_correct ~truth result.Simulator.outputs) then incr errors
  done;
  { trials; errors = !errors }
