open Bcclb_util

type kt1_info = { all_ids : int array; neighbor_ids : int array }

type t = {
  n : int;
  id : int;
  num_ports : int;
  input_ports : bool array;
  kt1 : kt1_info option;
  coins : Rng.t;
}

let n t = t.n
let id t = t.id
let num_ports t = t.num_ports

let is_input_port t p =
  if p < 0 || p >= t.num_ports then invalid_arg "View.is_input_port: port out of range";
  t.input_ports.(p)

let input_ports t =
  let acc = ref [] in
  for p = t.num_ports - 1 downto 0 do
    if t.input_ports.(p) then acc := p :: !acc
  done;
  !acc

let degree t = Arrayx.count Fun.id t.input_ports

let kt1 t = t.kt1

let neighbor_id t p =
  match t.kt1 with
  | None -> invalid_arg "View.neighbor_id: not available in KT-0"
  | Some k ->
    if p < 0 || p >= t.num_ports then invalid_arg "View.neighbor_id: port out of range";
    k.neighbor_ids.(p)

let all_ids t =
  match t.kt1 with
  | None -> invalid_arg "View.all_ids: not available in KT-0"
  | Some k -> Array.copy k.all_ids

let port_of_id t target =
  match t.kt1 with
  | None -> invalid_arg "View.port_of_id: not available in KT-0"
  | Some k ->
    (match Arrayx.find_index (Int.equal target) k.neighbor_ids with
    | Some p -> p
    | None -> raise Not_found)

let coins t = t.coins

(* The initial knowledge that indistinguishability compares (§3): id, port
   count, which ports carry input edges, and — in KT-1 — the ID labelling
   of ports. The coin stream is shared (public coins), so it is excluded. *)
let fingerprint t =
  let kt1_part =
    match t.kt1 with
    | None -> ""
    | Some k ->
      Printf.sprintf "|ids=%s|nbr=%s"
        (String.concat "," (Array.to_list (Array.map string_of_int k.all_ids)))
        (String.concat "," (Array.to_list (Array.map string_of_int k.neighbor_ids)))
  in
  Printf.sprintf "n=%d|id=%d|in=%s%s" t.n t.id
    (String.init t.num_ports (fun p -> if t.input_ports.(p) then '1' else '0'))
    kt1_part
