type 'o result = { outputs : 'o array; transcripts : Transcript.t array; rounds_used : int }

let check_width ~b ~round ~vertex msg =
  if Msg.width msg > b then
    invalid_arg
      (Printf.sprintf "Simulator: vertex %d broadcast %d bits in round %d (bandwidth %d)" vertex
         (Msg.width msg) round b)

let run ?(seed = 0) (Algo.Packed a) inst =
  let n = Instance.n inst in
  let b = a.Algo.bandwidth ~n in
  let total_rounds = a.Algo.rounds ~n in
  if total_rounds < 0 then invalid_arg "Simulator.run: negative round bound";
  let views = Array.init n (fun v -> Instance.view ~coins_seed:seed inst v) in
  let states = Array.map a.Algo.init views in
  let sent = Array.init n (fun _ -> Array.make total_rounds Msg.silent) in
  let received = Array.init n (fun _ -> Array.init total_rounds (fun _ -> [||])) in
  (* inbox.(v).(p): what v hears through port p; round-1 inboxes are
     silent because nothing was broadcast in "round 0". *)
  let inbox_of_broadcasts broadcasts =
    Array.init n (fun v -> Array.init (n - 1) (fun p -> broadcasts.(Instance.peer inst v p)))
  in
  let current_inbox = ref (Array.init n (fun _ -> Array.make (n - 1) Msg.silent)) in
  for round = 1 to total_rounds do
    let broadcasts = Array.make n Msg.silent in
    for v = 0 to n - 1 do
      received.(v).(round - 1) <- !current_inbox.(v);
      let state', msg = a.Algo.step states.(v) ~round ~inbox:!current_inbox.(v) in
      check_width ~b ~round ~vertex:v msg;
      states.(v) <- state';
      sent.(v).(round - 1) <- msg;
      broadcasts.(v) <- msg
    done;
    current_inbox := inbox_of_broadcasts broadcasts
  done;
  let outputs = Array.init n (fun v -> a.Algo.finish states.(v) ~inbox:!current_inbox.(v)) in
  let transcripts =
    Array.init n (fun v ->
        Transcript.make ~fingerprint:(View.fingerprint views.(v)) ~sent:sent.(v) ~received:received.(v))
  in
  { outputs; transcripts; rounds_used = total_rounds }

let indistinguishable ?(seed = 0) packed i1 i2 =
  if Instance.n i1 <> Instance.n i2 then invalid_arg "Simulator.indistinguishable: sizes differ";
  let r1 = run ~seed packed i1 and r2 = run ~seed packed i2 in
  let n = Instance.n i1 in
  let rec loop v = v >= n || (Transcript.equal r1.transcripts.(v) r2.transcripts.(v) && loop (v + 1)) in
  loop 0

let total_bits_broadcast result =
  Array.fold_left (fun acc t -> acc + Transcript.bits_broadcast t) 0 result.transcripts
