(** Problem specifications and verifiers for the problems the paper
    studies: Connectivity, TwoCycle, MultiCycle (decision), and
    ConnectedComponents (labelling). *)

val system_decision : bool array -> bool
(** §1.2: the system outputs YES iff {e all} vertices output YES. *)

val connectivity_truth : Bcclb_graph.Graph.t -> bool

val is_two_cycle_input : Bcclb_graph.Graph.t -> bool
(** The §3 promise: one cycle or two disjoint cycles, lengths ≥ 3. *)

val is_multicycle_input : Bcclb_graph.Graph.t -> bool
(** The §4 promise: one cycle, or ≥ 2 disjoint cycles each of length ≥ 4. *)

val decision_correct : truth:bool -> bool array -> bool
(** Is the system decision equal to the ground truth? *)

val components_correct : Bcclb_graph.Graph.t -> int array -> bool
(** ConnectedComponents verifier: the per-vertex labels must induce
    exactly the partition into connected components (labels themselves
    are free, per "output the label of the connected component"). *)

type stats = { trials : int; errors : int }

val error_rate : stats -> float

val measure_decision_error :
  ?seed:int -> bool Algo.packed -> trials:int -> (int -> Instance.t * bool) -> stats
(** Run [trials] executions on instances drawn from [gen] (called with the
    trial number) and count system-level decision errors. *)
