type t = { fingerprint : string; sent : Msg.t array; received : Msg.t array array }

let make ~fingerprint ~sent ~received = { fingerprint; sent; received }

let rounds t = Array.length t.sent

let fingerprint t = t.fingerprint

let sent t r =
  if r < 1 || r > rounds t then invalid_arg "Transcript.sent: round out of range";
  t.sent.(r - 1)

let received t r p =
  if r < 1 || r > rounds t then invalid_arg "Transcript.received: round out of range";
  t.received.(r - 1).(p)

let sent_sequence t = Array.copy t.sent

let sent_string t = String.init (rounds t) (fun i -> Msg.to_char1 t.sent.(i))

let equal a b =
  String.equal a.fingerprint b.fingerprint
  && Array.length a.sent = Array.length b.sent
  && Bcclb_util.Arrayx.for_all2 Msg.equal a.sent b.sent
  && Array.length a.received = Array.length b.received
  && Bcclb_util.Arrayx.for_all2 (Bcclb_util.Arrayx.for_all2 Msg.equal) a.received b.received

let bits_broadcast t = Array.fold_left (fun acc m -> acc + Msg.width m) 0 t.sent

let pp fmt t =
  Format.fprintf fmt "@[<v>sent: %s@]"
    (String.concat "," (Array.to_list (Array.map Msg.to_string t.sent)))
