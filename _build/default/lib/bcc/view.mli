(** A vertex's initial knowledge (§1.2).

    In KT-0 a vertex knows: its own ID, that there are n−1 ports, which
    ports carry input-graph edges, and a public random string. Port labels
    carry {e no} information about who is on the other side. In KT-1 it
    additionally knows all n IDs and the ID at the far end of every port.
    The KT-1 extras are simply absent from a KT-0 view, so an algorithm
    cannot access knowledge its model does not grant. *)

type kt1_info = {
  all_ids : int array;  (** All n IDs, sorted. *)
  neighbor_ids : int array;  (** [neighbor_ids.(p)] = ID across port [p]. *)
}

type t = {
  n : int;
  id : int;
  num_ports : int;
  input_ports : bool array;
  kt1 : kt1_info option;
  coins : Bcclb_util.Rng.t;
}

val n : t -> int
val id : t -> int
val num_ports : t -> int

val is_input_port : t -> int -> bool
(** @raise Invalid_argument on out-of-range port. *)

val input_ports : t -> int list
(** Ports carrying input edges, ascending. *)

val degree : t -> int
(** Input-graph degree. *)

val kt1 : t -> kt1_info option

val neighbor_id : t -> int -> int
(** KT-1 only. @raise Invalid_argument in KT-0. *)

val all_ids : t -> int array
(** KT-1 only (fresh copy). @raise Invalid_argument in KT-0. *)

val port_of_id : t -> int -> int
(** KT-1 only: the port whose far end has the given ID.
    @raise Not_found if no such neighbour, Invalid_argument in KT-0. *)

val coins : t -> Bcclb_util.Rng.t
(** Public-coin stream: every vertex of a run gets an identical copy. *)

val fingerprint : t -> string
(** Canonical encoding of the coin-free initial knowledge; two vertices
    are "initially indistinguishable" iff fingerprints are equal. *)
