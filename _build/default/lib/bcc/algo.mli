(** A vertex algorithm for the BCC(b) model.

    All n vertices run the same code; a vertex's behaviour may depend only
    on its {!View.t} (initial knowledge) and the messages it has received.
    Round semantics follow §1.2: in round r a vertex receives the round
    r−1 broadcasts ([inbox], indexed by port), computes, and broadcasts a
    message of at most [bandwidth ~n] bits; outputs are produced by
    [finish], which receives the final round's broadcasts. *)

type ('s, 'o) t = {
  name : string;
  bandwidth : n:int -> int;  (** b; the simulator rejects wider messages. *)
  rounds : n:int -> int;  (** Declared round bound T(n). *)
  init : View.t -> 's;
  step : 's -> round:int -> inbox:Msg.t array -> 's * Msg.t;
      (** Rounds are numbered 1..T; [inbox.(p)] is the message that
          arrived through port [p] (all-[Silent] in round 1). *)
  finish : 's -> inbox:Msg.t array -> 'o;
      (** Final output, consuming the round-T broadcasts. *)
}

type 'o packed = Packed : ('s, 'o) t -> 'o packed
(** Existentially hides the state type so heterogeneous algorithm
    families (e.g. all truncations of an optimal algorithm) can share a
    list. *)

val pack : ('s, 'o) t -> 'o packed

val name : 'o packed -> string
val bandwidth : 'o packed -> n:int -> int
val rounds : 'o packed -> n:int -> int

val bcc1 :
  name:string ->
  rounds:(n:int -> int) ->
  init:(View.t -> 's) ->
  step:('s -> round:int -> inbox:Msg.t array -> 's * Msg.t) ->
  finish:('s -> inbox:Msg.t array -> 'o) ->
  ('s, 'o) t
(** Convenience constructor with bandwidth fixed to 1 bit. *)

val map_output : ('o -> 'p) -> ('s, 'o) t -> ('s, 'p) t

val truncate : rounds:int -> ('s, 'o) t -> ('s, 'o) t
(** Run only the first [rounds] rounds, then decide from the truncated
    state — the family of t-round algorithms the lower-bound experiments
    quantify over. *)
