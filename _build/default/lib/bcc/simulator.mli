(** The synchronous BCC(b) round simulator.

    Faithful to §1.2: in each round every vertex receives the previous
    round's broadcasts through its ports, updates its state, and
    broadcasts at most b bits (or stays silent); outputs consume the last
    round's broadcasts. Bandwidth violations raise immediately — an
    algorithm cannot cheat the model. Randomness is public-coin: all
    vertices receive generators with the same [seed]. *)

type 'o result = {
  outputs : 'o array;  (** Per-vertex outputs. *)
  transcripts : Transcript.t array;  (** Per-vertex transcripts. *)
  rounds_used : int;
}

val run : ?seed:int -> 'o Algo.packed -> Instance.t -> 'o result
(** Execute the algorithm on the instance.
    @raise Invalid_argument if a vertex exceeds the declared bandwidth. *)

val indistinguishable : ?seed:int -> 'o Algo.packed -> Instance.t -> Instance.t -> bool
(** Do the two instances produce identical per-vertex states (initial
    knowledge + transcript) under this algorithm — the relation of
    Lemma 3.4? Vertices are compared by index, which is the natural
    correspondence for crossed instances. *)

val total_bits_broadcast : 'o result -> int
(** Σ over vertices of bits actually broadcast; the "information volume"
    the bottleneck arguments of §4 count. *)
