(** A single round's broadcast in the BCC(b) model: either silence (⊥) or
    a word of at most b bits. In BCC(1) the per-round alphabet is exactly
    the paper's {0, 1, ⊥}. *)

type t = Silent | Word of Bcclb_util.Bits.t

val silent : t

val zero : t
(** 1-bit 0. *)

val one : t
(** 1-bit 1. *)

val of_bit : bool -> t
val of_bits : Bcclb_util.Bits.t -> t
val of_int : width:int -> int -> t

val width : t -> int
(** 0 for silence. *)

val is_silent : t -> bool
val to_bits_opt : t -> Bcclb_util.Bits.t option

val equal : t -> t -> bool
val compare : t -> t -> int

val to_char1 : t -> char
(** ['0'], ['1'], or ['_'] for a BCC(1) message.
    @raise Invalid_argument on wider words. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
