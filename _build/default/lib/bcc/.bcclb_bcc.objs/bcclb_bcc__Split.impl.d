lib/bcc/split.ml: Algo Array Bcclb_util Bits List Mathx Msg Printf View
