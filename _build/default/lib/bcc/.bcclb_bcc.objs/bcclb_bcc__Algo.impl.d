lib/bcc/algo.ml: Msg Printf View
