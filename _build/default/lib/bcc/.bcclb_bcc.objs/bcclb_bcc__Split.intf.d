lib/bcc/split.mli: Algo
