lib/bcc/algo.mli: Msg View
