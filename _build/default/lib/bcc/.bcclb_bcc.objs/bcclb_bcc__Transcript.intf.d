lib/bcc/transcript.mli: Format Msg
