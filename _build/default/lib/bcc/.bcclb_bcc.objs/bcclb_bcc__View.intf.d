lib/bcc/view.mli: Bcclb_util
