lib/bcc/msg.ml: Bcclb_util Bits Format
