lib/bcc/problems.mli: Algo Bcclb_graph Instance
