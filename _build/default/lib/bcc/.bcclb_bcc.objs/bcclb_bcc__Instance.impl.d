lib/bcc/instance.ml: Array Arrayx Bcclb_graph Bcclb_util Format Graph Hashtbl Int List Rng View
