lib/bcc/view.ml: Array Arrayx Bcclb_util Fun Int Printf Rng String
