lib/bcc/simulator.mli: Algo Instance Transcript
