lib/bcc/problems.ml: Array Bcclb_graph Cycles Fun Graph Hashtbl List Simulator
