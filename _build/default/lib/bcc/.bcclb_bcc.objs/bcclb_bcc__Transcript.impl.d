lib/bcc/transcript.ml: Array Bcclb_util Format Msg String
