lib/bcc/simulator.ml: Algo Array Instance Msg Printf Transcript View
