lib/bcc/msg.mli: Bcclb_util Format
