lib/bcc/instance.mli: Bcclb_graph Bcclb_util Format View
