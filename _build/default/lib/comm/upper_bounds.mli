(** Deterministic O(n log n)-bit protocols: the upper halves of the
    communication sandwiches in §2 and §4 (the "simple deterministic
    protocol" the paper describes: ship the partition / the component
    labelling, finish locally). *)

val partition_protocol :
  n:int ->
  ( Bcclb_partition.Set_partition.t, Bcclb_partition.Set_partition.t, bool, bool )
  Protocol.spec
(** Decide P_A ∨ P_B = 1 in n·⌈log₂ n⌉ + 1 bits. *)

val partition_comp_protocol :
  n:int ->
  ( Bcclb_partition.Set_partition.t,
    Bcclb_partition.Set_partition.t,
    Bcclb_partition.Set_partition.t,
    Bcclb_partition.Set_partition.t )
  Protocol.spec
(** Both parties output P_A ∨ P_B in 2·n·⌈log₂ n⌉ bits. *)

val connectivity2_protocol :
  n:int -> ((int * int) list, (int * int) list, bool, bool) Protocol.spec
(** Vertex-partitioned 2-party Connectivity over edge lists on a shared
    vertex set [0..n−1]: Alice sends her induced component labelling
    (n·⌈log₂ n⌉ bits), Bob merges with his edges and answers. *)

val label_width : n:int -> int
