(* Two-party deterministic protocols with simultaneous exchange: in each
   round Alice and Bob both emit a bit string computed from their own
   input and everything received so far, then both receive. This subsumes
   alternating protocols (send "" when it is not your turn) and models the
   §4.3 BCC simulation directly (both parties send every round). *)

type ('ia, 'ib, 'oa, 'ob) spec = {
  name : string;
  rounds : int;
  alice : 'ia -> round:int -> received:string list -> string;
  bob : 'ib -> round:int -> received:string list -> string;
  output_a : 'ia -> received:string list -> 'oa;
  output_b : 'ib -> received:string list -> 'ob;
}

type ('oa, 'ob) result = {
  out_a : 'oa;
  out_b : 'ob;
  transcript : (string * string) list;  (* (alice_msg, bob_msg) per round *)
  bits_a : int;
  bits_b : int;
}

let check_bits name s =
  String.iter
    (fun c ->
      if c <> '0' && c <> '1' then
        invalid_arg (Printf.sprintf "Protocol %s: message contains non-bit character %c" name c))
    s

let run spec ia ib =
  let a_received = ref [] and b_received = ref [] in
  let transcript = ref [] in
  let bits_a = ref 0 and bits_b = ref 0 in
  for round = 1 to spec.rounds do
    let ma = spec.alice ia ~round ~received:(List.rev !a_received) in
    let mb = spec.bob ib ~round ~received:(List.rev !b_received) in
    check_bits spec.name ma;
    check_bits spec.name mb;
    bits_a := !bits_a + String.length ma;
    bits_b := !bits_b + String.length mb;
    a_received := mb :: !a_received;
    b_received := ma :: !b_received;
    transcript := (ma, mb) :: !transcript
  done;
  { out_a = spec.output_a ia ~received:(List.rev !a_received);
    out_b = spec.output_b ib ~received:(List.rev !b_received);
    transcript = List.rev !transcript;
    bits_a = !bits_a;
    bits_b = !bits_b }

let total_bits r = r.bits_a + r.bits_b

let transcript_string r =
  String.concat "|" (List.map (fun (a, b) -> a ^ ";" ^ b) r.transcript)

(* Fixed-width big-endian integer codecs for building messages. *)
let encode_int ~width v =
  if v < 0 || (width < 62 && v lsr width <> 0) then invalid_arg "Protocol.encode_int: value does not fit";
  String.init width (fun i -> if (v lsr (width - 1 - i)) land 1 = 1 then '1' else '0')

let decode_int s =
  String.fold_left
    (fun acc c ->
      match c with
      | '0' -> acc * 2
      | '1' -> (acc * 2) + 1
      | _ -> invalid_arg "Protocol.decode_int: non-bit character")
    0 s

let encode_ints ~width vs = String.concat "" (List.map (encode_int ~width) vs)

let decode_ints ~width s =
  let len = String.length s in
  if len mod width <> 0 then invalid_arg "Protocol.decode_ints: length not a multiple of width";
  List.init (len / width) (fun i -> decode_int (String.sub s (i * width) width))
