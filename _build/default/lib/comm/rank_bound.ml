open Bcclb_bignum

(* Communication lower bounds via matrix rank (Lemma 1.28 of [KN97]): a
   deterministic protocol for a problem with communication matrix M needs
   at least log2(rank(M)) bits. For Partition rank(M^n) = B_n
   (Theorem 2.3) and for TwoPartition rank(E^n) = r (Lemma 4.1), so both
   bounds are Theta(n log n) bits. *)

let partition_bits ~n = Nat.log2 (Combi.bell n)

let two_partition_bits ~n = Nat.log2 (Combi.perfect_matchings n)

(* Verified variant: build the actual matrix and certify full rank over
   Q by full rank mod p. Feasible to n = 7 for M^n, n = 10 for E^n. *)
let verified_partition_bits ~n =
  let m = Bcclb_linalg.Partition_matrix.m_matrix ~n in
  let rank = Bcclb_linalg.Zmod.rank (Bcclb_linalg.Zmod.create ()) m in
  if rank <> Array.length m then
    failwith "Rank_bound.verified_partition_bits: matrix is not full rank (contradicts Theorem 2.3)";
  Bcclb_util.Mathx.log2 (float_of_int rank)

let verified_two_partition_bits ~n =
  let m = Bcclb_linalg.Partition_matrix.e_matrix ~n in
  let rank = Bcclb_linalg.Zmod.rank (Bcclb_linalg.Zmod.create ()) m in
  if rank <> Array.length m then
    failwith "Rank_bound.verified_two_partition_bits: matrix is not full rank (contradicts Lemma 4.1)";
  Bcclb_util.Mathx.log2 (float_of_int rank)

(* The round lower bound the reduction of §4.3 yields: a KT-1 BCC(1)
   algorithm solving Connectivity on 4n-vertex gadgets in t rounds gives
   a 2-party Partition protocol with <= c * n * t bits (2n characters of
   2 bits from each party per round), so t >= lb_bits / (8n). *)
let kt1_round_lb ~bits_per_round lb_bits = lb_bits /. float_of_int bits_per_round
