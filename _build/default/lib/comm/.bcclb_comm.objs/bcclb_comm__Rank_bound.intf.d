lib/comm/rank_bound.mli:
