lib/comm/upper_bounds.ml: Array Bcclb_graph Bcclb_partition Bcclb_util List Mathx Protocol Set_partition
