lib/comm/protocol.mli:
