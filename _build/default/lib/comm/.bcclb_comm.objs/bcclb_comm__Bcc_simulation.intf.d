lib/comm/bcc_simulation.mli: Bcclb_bcc Bcclb_graph Bcclb_partition
