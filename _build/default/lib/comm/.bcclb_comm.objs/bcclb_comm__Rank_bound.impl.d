lib/comm/rank_bound.ml: Array Bcclb_bignum Bcclb_linalg Bcclb_util Combi Nat
