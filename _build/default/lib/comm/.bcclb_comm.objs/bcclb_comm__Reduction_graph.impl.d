lib/comm/reduction_graph.ml: Array Bcclb_graph Bcclb_partition Graph List Set_partition Two_partition
