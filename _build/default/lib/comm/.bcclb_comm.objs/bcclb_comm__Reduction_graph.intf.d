lib/comm/reduction_graph.mli: Bcclb_graph Bcclb_partition
