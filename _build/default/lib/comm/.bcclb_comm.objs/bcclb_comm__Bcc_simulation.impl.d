lib/comm/bcc_simulation.ml: Algo Array Bcclb_bcc Bcclb_graph Bcclb_partition Instance Msg Problems Reduction_graph
