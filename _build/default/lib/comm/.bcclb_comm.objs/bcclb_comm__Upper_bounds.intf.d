lib/comm/upper_bounds.mli: Bcclb_partition Protocol
