lib/comm/protocol.ml: List Printf String
