(** Two-party deterministic communication protocols with measured cost.

    The model of §4: Alice and Bob hold private inputs, exchange bit
    strings over rounds (simultaneous exchange each round — alternating
    protocols just send [""] off-turn), and produce outputs from their
    input plus everything received. The driver counts every bit, giving
    the measured side of the Ω(n log n)-vs-O(n log n) sandwich. *)

type ('ia, 'ib, 'oa, 'ob) spec = {
  name : string;
  rounds : int;
  alice : 'ia -> round:int -> received:string list -> string;
      (** Message for this round, from own input and Bob's messages of
          rounds 1..round−1 (oldest first). Bits only ('0'/'1'). *)
  bob : 'ib -> round:int -> received:string list -> string;
  output_a : 'ia -> received:string list -> 'oa;
  output_b : 'ib -> received:string list -> 'ob;
}

type ('oa, 'ob) result = {
  out_a : 'oa;
  out_b : 'ob;
  transcript : (string * string) list;
  bits_a : int;  (** Bits Alice sent. *)
  bits_b : int;
}

val run : ('ia, 'ib, 'oa, 'ob) spec -> 'ia -> 'ib -> ('oa, 'ob) result
(** @raise Invalid_argument if a message contains non-bit characters. *)

val total_bits : ('oa, 'ob) result -> int

val transcript_string : ('oa, 'ob) result -> string
(** Canonical encoding of the whole conversation — the random variable Π
    of Theorem 4.5. *)

val encode_int : width:int -> int -> string
(** Fixed-width big-endian bits. @raise Invalid_argument if it does not fit. *)

val decode_int : string -> int

val encode_ints : width:int -> int list -> string
val decode_ints : width:int -> string -> int list
