(** Deterministic communication lower bounds via matrix rank
    (Corollaries 2.4 and 4.2): any deterministic protocol needs at least
    log₂ rank(M) bits [KN97, Lemma 1.28]. *)

val partition_bits : n:int -> float
(** log₂ Bₙ = Θ(n log n): the Partition lower bound, using the exact Bell
    number (Theorem 2.3 supplies rank(Mⁿ) = Bₙ). Works for any n. *)

val two_partition_bits : n:int -> float
(** log₂ r with r = n!/(2^{n/2}(n/2)!): the TwoPartition lower bound
    (Lemma 4.1). @raise Invalid_argument on odd n. *)

val verified_partition_bits : n:int -> float
(** Builds Mⁿ and certifies full rank over ℚ (full rank mod p); the
    lower bound with the rank fact {e checked}, not assumed. Feasible to
    n ≈ 7. @raise Failure if the matrix is ever rank-deficient. *)

val verified_two_partition_bits : n:int -> float
(** Same for Eⁿ; feasible to n ≈ 10. *)

val kt1_round_lb : bits_per_round:int -> float -> float
(** Rounds forced on a KT-1 BCC(1) algorithm by a communication lower
    bound of [lb_bits], given that the §4.3 simulation spends
    [bits_per_round] bits per simulated round. *)
