(** The §4.3 reduction: compile any KT-1 BCC(b) algorithm into a 2-party
    protocol on a vertex-partitioned input graph, with measured
    communication.

    Per simulated round each party ships the broadcast characters of its
    hosted vertices ({⊥} ∪ {0,1}^{≤b}, encoded in b+1 bits each), so an
    r-round BCC(1) algorithm on an N-vertex graph costs exactly 2·N·r
    bits here (N characters per round across both parties) — the O(rn)
    accounting in the proof of Theorem 4.4. Combined with
    {!Rank_bound}, a fast KT-1 Connectivity algorithm would violate the
    Ω(n log n) Partition bound: that is the lower bound, executed. *)

type 'o result = {
  outputs : 'o array;
  rounds : int;
  chars_per_round : int;
  bits_total : int;
  bits_alice : int;
  bits_bob : int;
}

val run :
  ?seed:int -> 'o Bcclb_bcc.Algo.packed -> Bcclb_graph.Graph.t -> alice_hosts:(int -> bool) ->
  'o result
(** Simulate the algorithm on the KT-1 instance of the graph, hosting
    vertex v with Alice iff [alice_hosts v].
    @raise Invalid_argument on bandwidth violation. *)

type partition_result = { answer : bool; bits : int; bcc_rounds : int; gadget_n : int }

val partition_via_bcc :
  ?seed:int -> bool Bcclb_bcc.Algo.packed -> Bcclb_partition.Set_partition.t ->
  Bcclb_partition.Set_partition.t -> partition_result
(** Solve Partition through the full pipeline: build G(P_A, P_B), host
    A ∪ L with Alice, simulate the given KT-1 Connectivity algorithm. *)

val two_partition_via_bcc :
  ?seed:int -> bool Bcclb_bcc.Algo.packed -> Bcclb_partition.Set_partition.t ->
  Bcclb_partition.Set_partition.t -> partition_result
(** TwoPartition through the 2-regular MultiCycle gadget. *)

val partition_comp_via_bcc :
  ?seed:int -> int Bcclb_bcc.Algo.packed -> Bcclb_partition.Set_partition.t ->
  Bcclb_partition.Set_partition.t ->
  Bcclb_partition.Set_partition.t * int result
(** PartitionComp via a ConnectedComponents algorithm: the join is read
    off the component labels of the ℓ-vertices (Theorem 4.5's use). *)
