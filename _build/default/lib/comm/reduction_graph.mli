(** The reduction gadgets of §4.2 (Figure 2).

    [gadget P_A P_B] is the 4n-vertex graph G(P_A, P_B): spine edges
    (ℓᵢ, rᵢ) for every i, Alice's part-vertices aⱼ wired to the ℓᵢ of
    part Sⱼ ∈ P_A (unused aⱼ tied to ℓ_{n−1}), and symmetrically for Bob.
    Theorem 4.3: its components restrict to exactly P_A ∨ P_B on the
    element-vertices, so G is connected iff P_A ∨ P_B = 1.

    [two_gadget] is the TwoPartition variant on 2n vertices with no
    part-vertices; every vertex has degree exactly 2, so the instance is
    a disjoint union of cycles (each of length ≥ 4: spine edges alternate
    sides) — a MultiCycle instance. *)

val gadget : Bcclb_partition.Set_partition.t -> Bcclb_partition.Set_partition.t -> Bcclb_graph.Graph.t
(** @raise Invalid_argument on mismatched ground sets. *)

val vertex_a : n:int -> int -> int
val vertex_l : n:int -> int -> int
val vertex_r : n:int -> int -> int
val vertex_b : n:int -> int -> int
(** Vertex indices of the four groups. @raise Invalid_argument out of range. *)

val alice_hosts : n:int -> int -> bool
(** Alice hosts A ∪ L (the first 2n vertices) in the §4.3 simulation. *)

val two_gadget :
  Bcclb_partition.Set_partition.t -> Bcclb_partition.Set_partition.t -> Bcclb_graph.Graph.t
(** @raise Invalid_argument if either input is not a TwoPartition. *)

val two_vertex_l : n:int -> int -> int
val two_vertex_r : n:int -> int -> int

val two_alice_hosts : n:int -> int -> bool

val gadget_partition : Bcclb_graph.Graph.t -> n:int -> Bcclb_partition.Set_partition.t
(** The partition induced on ℓ-vertices by components of [gadget]. *)

val two_gadget_partition : Bcclb_graph.Graph.t -> n:int -> Bcclb_partition.Set_partition.t
(** The partition induced on ℓ-vertices by components of [two_gadget]. *)
