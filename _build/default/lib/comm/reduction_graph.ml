open Bcclb_graph
open Bcclb_partition

(* The §4.2 gadget graphs G(P_A, P_B).

   Vertex layout (0-based indices; paper IDs are index + 1):
     a_i = i          (Alice's part-vertices)
     l_i = n + i      (Alice's element-vertices)
     r_i = 2n + i     (Bob's element-vertices)
     b_i = 3n + i     (Bob's part-vertices)
   The spine edges (l_i, r_i) exist for every i independent of the
   inputs; Alice wires parts of P_A to L, Bob wires parts of P_B to R. *)

let vertex_a ~n i = if i < 0 || i >= n then invalid_arg "Reduction_graph.vertex_a" else i
let vertex_l ~n i = if i < 0 || i >= n then invalid_arg "Reduction_graph.vertex_l" else n + i
let vertex_r ~n i = if i < 0 || i >= n then invalid_arg "Reduction_graph.vertex_r" else (2 * n) + i
let vertex_b ~n i = if i < 0 || i >= n then invalid_arg "Reduction_graph.vertex_b" else (3 * n) + i

let side_edges ~n ~element_vertex ~part_vertex partition =
  let blocks = Set_partition.blocks partition in
  let edges = ref [] in
  List.iteri
    (fun j block -> List.iter (fun i -> edges := (part_vertex j, element_vertex i) :: !edges) block)
    blocks;
  (* Part-vertices beyond the number of actual parts are tied to the last
     element-vertex so that the graph has no isolated vertices (the
     "connected to ℓ_*" trick of Figure 2). *)
  for j = List.length blocks to n - 1 do
    edges := (part_vertex j, element_vertex (n - 1)) :: !edges
  done;
  !edges

let gadget pa pb =
  let n = Set_partition.ground_size pa in
  if Set_partition.ground_size pb <> n then invalid_arg "Reduction_graph.gadget: ground sets differ";
  let spine = List.init n (fun i -> (vertex_l ~n i, vertex_r ~n i)) in
  let alice = side_edges ~n ~element_vertex:(vertex_l ~n) ~part_vertex:(vertex_a ~n) pa in
  let bob = side_edges ~n ~element_vertex:(vertex_r ~n) ~part_vertex:(vertex_b ~n) pb in
  Graph.of_edges ~n:(4 * n) (spine @ alice @ bob)

let alice_hosts ~n v = v < 2 * n

(* TwoPartition variant: no part-vertices; pairs become direct edges on
   the element-vertices, so every vertex has degree exactly 2. Layout:
   l_i = i, r_i = n + i. *)
let two_vertex_l ~n i = if i < 0 || i >= n then invalid_arg "Reduction_graph.two_vertex_l" else i
let two_vertex_r ~n i = if i < 0 || i >= n then invalid_arg "Reduction_graph.two_vertex_r" else n + i

let two_gadget pa pb =
  let n = Set_partition.ground_size pa in
  if Set_partition.ground_size pb <> n then invalid_arg "Reduction_graph.two_gadget: ground sets differ";
  let pairs_a = Two_partition.pairs pa and pairs_b = Two_partition.pairs pb in
  let spine = List.init n (fun i -> (two_vertex_l ~n i, two_vertex_r ~n i)) in
  let alice = List.map (fun (i, j) -> (two_vertex_l ~n i, two_vertex_l ~n j)) pairs_a in
  let bob = List.map (fun (i, j) -> (two_vertex_r ~n i, two_vertex_r ~n j)) pairs_b in
  Graph.of_edges ~n:(2 * n) (spine @ alice @ bob)

let two_alice_hosts ~n v = v < n

(* The partition of [n] induced on the element-vertices by the connected
   components of a gadget — Theorem 4.3 says this equals P_A ∨ P_B. *)
let induced_partition ~n ~element_vertex g =
  let labels = Graph.components g in
  Bcclb_partition.Set_partition.of_labels (Array.init n (fun i -> labels.(element_vertex i)))

let gadget_partition g ~n = induced_partition ~n ~element_vertex:(fun i -> n + i) g

let two_gadget_partition g ~n = induced_partition ~n ~element_vertex:(fun i -> i) g
