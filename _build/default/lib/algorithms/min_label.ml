open Bcclb_bcc

(* Min-label flooding, the trivial baseline (E10): labels start as own
   IDs and repeatedly drop to the minimum over input-graph neighbours.
   Each phase broadcasts the current label over L = id_width rounds; after
   [phases] phases the label equals the minimum ID within distance
   [phases], so any [phases] >= diameter converges. A final phase
   broadcasts the converged label so that every vertex can compare all n
   labels and decide Connectivity. Θ(n log n) rounds on a cycle — the
   baseline the O(log n) discovery algorithm beats by a factor Θ(n). *)

type state = {
  view : View.t;
  l : int;
  phases : int;
  label : int;
  acc : Msg.t array list;  (* inboxes of the current phase, newest first *)
}

let decode_phase_labels st =
  (* acc holds the inboxes of rounds 2..L+1 relative to the phase start,
     i.e. exactly the L broadcast bits of the phase, for every port. *)
  let inboxes = List.rev st.acc in
  let num_ports = View.num_ports st.view in
  let labels = Array.make num_ports None in
  let seq p = Array.of_list (List.map (fun inbox -> inbox.(p)) inboxes) in
  for p = 0 to num_ports - 1 do
    let v, ok = Codec.decode_int ~first:1 ~width:st.l (seq p) in
    labels.(p) <- (if ok then Some v else None)
  done;
  labels

let make ~phases_of =
  let rounds ~n =
    let l = Codec.id_width ~n in
    (phases_of ~n + 1) * l
  in
  let init view =
    { view;
      l = Codec.id_width ~n:(View.n view);
      phases = phases_of ~n:(View.n view) + 1;
      label = View.id view;
      acc = [] }
  in
  let step st ~round ~inbox =
    let pos = (round - 1) mod st.l in
    (* A phase's bits are received one round late: collect inboxes of
       rounds 2..L+1 of each phase, then update the label. *)
    let st =
      if pos = 0 && round > 1 then begin
        let labels = decode_phase_labels { st with acc = inbox :: st.acc } in
        let lbl = ref st.label in
        List.iter
          (fun p -> match labels.(p) with Some v -> lbl := min !lbl v | None -> ())
          (View.input_ports st.view);
        { st with label = !lbl; acc = [] }
      end
      else if pos = 1 then { st with acc = [ inbox ] }
      else { st with acc = inbox :: st.acc }
    in
    (st, Codec.msg_of_bit (Codec.bit_of_int ~width:st.l ~pos st.label))
  in
  (rounds, init, step)

let connectivity ?phases () =
  let phases_of ~n = match phases with Some p -> p | None -> (n / 2) + 1 in
  let name = "min-label-connectivity" in
  let rounds, init, step = make ~phases_of in
  let finish st ~inbox =
    (* The last phase broadcast everyone's converged label; all labels
       (over all ports) must equal ours for a YES. *)
    let labels = decode_phase_labels { st with acc = inbox :: st.acc } in
    Array.for_all (function Some v -> v = st.label | None -> false) labels
  in
  Algo.pack (Algo.bcc1 ~name ~rounds ~init ~step ~finish)

let components ?phases () =
  let phases_of ~n = match phases with Some p -> p | None -> (n / 2) + 1 in
  let name = "min-label-components" in
  let rounds, init, step = make ~phases_of in
  let finish st ~inbox:_ = st.label in
  Algo.pack (Algo.bcc1 ~name ~rounds ~init ~step ~finish)
