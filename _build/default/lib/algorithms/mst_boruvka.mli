(** Borůvka minimum spanning forest in BCC(2·⌈log₂(n+1)⌉) with KT-1
    knowledge, O(log n) rounds — the MST side of the paper's §1 contrast
    (MST is O(1) in CC(log n) [JN18], while even Connectivity needs
    Ω(log n/ b) in BCC(b)).

    Edge weights are the canonical injective function
    {!Bcclb_graph.Mst.weight_of_ids} of the endpoint IDs, so weights are
    distinct (the forest is unique) and never transmitted. Every vertex
    deterministically replays the same global merge, so all vertices
    output identical forests. *)

val forest : unit -> (int * int) list Bcclb_bcc.Algo.packed
(** The minimum spanning forest as sorted (min-ID, max-ID) edge pairs;
    identical at every vertex, equal to Kruskal's forest. *)

val total_weight : unit -> int Bcclb_bcc.Algo.packed
