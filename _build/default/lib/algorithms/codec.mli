(** Bit-level encoding helpers shared by the BCC(1) algorithms: integers
    are broadcast big-endian over consecutive rounds, one bit per round. *)

val bit_of_int : width:int -> pos:int -> int -> bool
(** Bit [pos] (0 = most significant) of a [width]-bit integer.
    @raise Invalid_argument out of range. *)

val msg_of_bit : bool -> Bcclb_bcc.Msg.t

val decode_int : first:int -> width:int -> Bcclb_bcc.Msg.t array -> int * bool
(** Decode the integer broadcast in rounds [first..first+width−1] of a
    sender's broadcast sequence. Returns [(value, complete)]; missing or
    silent rounds decode as 0 bits with [complete = false], so truncated
    algorithms can fall back to guessing. *)

val broadcast_sequences :
  num_ports:int -> inboxes:Bcclb_bcc.Msg.t array list -> Bcclb_bcc.Msg.t array array
(** Reassemble, per port, the broadcast sequence of the vertex behind that
    port from all inboxes delivered so far (oldest first, including the
    all-silent round-1 inbox; in [finish], append the final inbox). *)

val id_width : n:int -> int
(** Bits needed for IDs under the repository's default ID space 1..n. *)
