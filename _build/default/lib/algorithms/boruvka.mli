(** Borůvka-style Connectivity/ConnectedComponents in BCC(2·⌈log₂(n+1)⌉)
    with KT-1 knowledge: O(log n) rounds on arbitrary input graphs.

    This is the repository's stand-in for the b = log n regime the paper
    contrasts against (§1: BCC(log n) admits O(log n / log log n)
    [JN17]; a t-round BCC(1) lower bound is a t/b-round BCC(b) lower
    bound). Each vertex announces its component label and its minimum
    "foreign" neighbouring label; since broadcasts are global, every
    vertex replays the same deterministic merge and the label maps never
    diverge. *)

val connectivity : unit -> bool Bcclb_bcc.Algo.packed
(** YES iff all component labels coincide after convergence. *)

val components : unit -> int Bcclb_bcc.Algo.packed
(** Smallest ID of the vertex's component. *)
