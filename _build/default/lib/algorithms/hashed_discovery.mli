(** A randomized Monte Carlo TwoCycle algorithm with a genuine
    rounds-vs-error trade-off: broadcast k-bit public-coin hashes of IDs
    instead of full IDs and decide connectivity of the hashed graph, in
    3k rounds.

    One-sided error: hashing only merges vertices, so YES (one-cycle)
    instances are always answered correctly, while a NO instance is
    answered YES iff some cross-cycle hash collision occurs — probability
    ≈ min(1, |C₁||C₂|/2^k). With k = o(log n) the error is constant;
    pushing it below a constant ε needs k = Ω(log n), i.e. Ω(log n)
    rounds — the trade-off Theorem 3.1 proves is unavoidable, exhibited
    by a concrete algorithm (experiment E3). *)

val connectivity : k:int -> bool Bcclb_bcc.Algo.packed
(** @raise Invalid_argument for k outside [1, 20] or non-2-regular
    inputs. *)

val predicted_error : n:int -> k:int -> float
(** Union-bound prediction for the balanced two-cycle instance. *)
