open Bcclb_bcc

(* Big-endian bit schedules for multi-round broadcasts in BCC(1). *)

let bit_of_int ~width ~pos v =
  if pos < 0 || pos >= width then invalid_arg "Codec.bit_of_int: position out of range";
  (v lsr (width - 1 - pos)) land 1 = 1

let msg_of_bit b = Msg.of_bit b

(* Decode big-endian bits broadcast during rounds [first..first+width-1]
   from one sender's broadcast sequence. Silent rounds decode as 0 and are
   reported, so truncated executions can be detected. *)
let decode_int ~first ~width broadcasts =
  let missing = ref false in
  let v = ref 0 in
  for k = 0 to width - 1 do
    let r = first + k in
    let bit =
      if r - 1 >= Array.length broadcasts then begin
        missing := true;
        false
      end
      else begin
        match broadcasts.(r - 1) with
        | Msg.Silent ->
          missing := true;
          false
        | Msg.Word b -> Bcclb_util.Bits.to_bool b
      end
    in
    v := (!v lsl 1) lor (if bit then 1 else 0)
  done;
  (!v, not !missing)

(* The per-sender broadcast sequences seen by one vertex: element [p] is
   the array of broadcasts of the peer behind port [p]. [inboxes] is the
   full list of inboxes delivered so far, oldest first. Inbox r carries
   the round r−1 broadcasts, so dropping the (all-silent) first inbox
   leaves exactly the broadcasts of rounds 1..len−1. *)
let broadcast_sequences ~num_ports ~inboxes =
  let all = match inboxes with [] -> [] | _ :: tl -> tl in
  let t = List.length all in
  let seqs = Array.make num_ports [||] in
  for p = 0 to num_ports - 1 do
    let arr = Array.make t Msg.Silent in
    List.iteri (fun i inbox -> arr.(i) <- inbox.(p)) all;
    seqs.(p) <- arr
  done;
  seqs

let id_width ~n = Bcclb_util.Mathx.ceil_log2 (n + 1)
