lib/algorithms/codec.mli: Bcclb_bcc
