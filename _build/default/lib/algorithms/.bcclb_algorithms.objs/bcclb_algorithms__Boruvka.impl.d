lib/algorithms/boruvka.ml: Algo Array Bcclb_bcc Bcclb_graph Bcclb_util Codec Hashtbl Int List Map Msg Seq Union_find View
