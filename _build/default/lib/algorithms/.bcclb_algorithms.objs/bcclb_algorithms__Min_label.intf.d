lib/algorithms/min_label.mli: Bcclb_bcc
