lib/algorithms/hashed_discovery.ml: Algo Array Bcclb_bcc Bcclb_graph Bcclb_util Codec Int List Msg Printf Rng Union_find View
