lib/algorithms/adjacency_matrix.ml: Algo Array Bcclb_bcc Bcclb_graph Bcclb_util Graph Hashtbl Msg View
