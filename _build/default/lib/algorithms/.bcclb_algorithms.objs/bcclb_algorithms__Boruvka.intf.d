lib/algorithms/boruvka.mli: Bcclb_bcc
