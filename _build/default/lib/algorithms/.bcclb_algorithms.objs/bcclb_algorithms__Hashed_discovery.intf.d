lib/algorithms/hashed_discovery.mli: Bcclb_bcc
