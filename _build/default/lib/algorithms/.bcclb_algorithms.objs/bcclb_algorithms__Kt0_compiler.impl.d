lib/algorithms/kt0_compiler.ml: Algo Array Bcclb_bcc Bcclb_util Codec Int List Msg Printf View
