lib/algorithms/discovery.ml: Algo Array Bcclb_bcc Bcclb_graph Codec Graph Hashtbl Instance Int List Msg Printf View
