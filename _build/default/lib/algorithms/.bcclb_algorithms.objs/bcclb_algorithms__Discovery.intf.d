lib/algorithms/discovery.mli: Bcclb_bcc
