lib/algorithms/kt0_compiler.mli: Bcclb_bcc
