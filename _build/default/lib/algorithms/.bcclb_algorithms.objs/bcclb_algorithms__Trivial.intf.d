lib/algorithms/trivial.mli: Bcclb_bcc
