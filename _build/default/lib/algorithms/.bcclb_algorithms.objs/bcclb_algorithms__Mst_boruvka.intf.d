lib/algorithms/mst_boruvka.mli: Bcclb_bcc
