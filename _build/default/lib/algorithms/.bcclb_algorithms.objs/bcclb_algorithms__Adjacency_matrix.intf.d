lib/algorithms/adjacency_matrix.mli: Bcclb_bcc
