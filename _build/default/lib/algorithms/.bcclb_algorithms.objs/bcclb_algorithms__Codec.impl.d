lib/algorithms/codec.ml: Array Bcclb_bcc Bcclb_util List Msg
