lib/algorithms/agm_connectivity.ml: Algo Array Bcclb_bcc Bcclb_graph Bcclb_sketch Bcclb_util Buffer Edge_coding Hashtbl L0_sampler List Msg Option String Union_find View
