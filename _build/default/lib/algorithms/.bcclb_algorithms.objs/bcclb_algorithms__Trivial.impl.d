lib/algorithms/trivial.ml: Algo Bcclb_bcc Bcclb_util Msg View
