lib/algorithms/min_label.ml: Algo Array Bcclb_bcc Codec List Msg View
