lib/algorithms/mst_boruvka.ml: Algo Array Bcclb_bcc Bcclb_graph Bcclb_util Codec Hashtbl Int List Msg Mst Union_find View
