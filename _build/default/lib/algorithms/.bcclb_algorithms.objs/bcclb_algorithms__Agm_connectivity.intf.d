lib/algorithms/agm_connectivity.mli: Bcclb_bcc
