(** The generic Θ(n)-round KT-1 BCC(1) upper bound: broadcast the full
    adjacency row, one port per round; after n−1 rounds every vertex
    holds the entire input graph, of any density. The yardstick that the
    O(log n) bounded-degree algorithms ({!Discovery}) beat on the paper's
    sparse promise inputs. *)

val connectivity : unit -> bool Bcclb_bcc.Algo.packed

val components : unit -> int Bcclb_bcc.Algo.packed
(** Each vertex outputs the smallest ID in its component. *)
