open Bcclb_bcc

(* Degenerate 0-round baselines: the yardsticks against which the error
   floor of the lower-bound experiments is read. Under the hard
   distribution μ of §3.1 (half YES, half NO), each errs with probability
   exactly 1/2. *)

let constant ~name answer =
  Algo.pack
    (Algo.bcc1 ~name
       ~rounds:(fun ~n:_ -> 0)
       ~init:(fun _view -> ())
       ~step:(fun () ~round:_ ~inbox:_ -> ((), Msg.silent))
       ~finish:(fun () ~inbox:_ -> answer))

let always_yes () = constant ~name:"always-yes" true
let always_no () = constant ~name:"always-no" false

(* Public-coin guess: every vertex flips the SAME coin (shared random
   string), so the system's answer is a fair coin — erring with
   probability 1/2 on every instance. *)
let coin_guess () =
  Algo.pack
    (Algo.bcc1 ~name:"coin-guess"
       ~rounds:(fun ~n:_ -> 0)
       ~init:(fun view -> Bcclb_util.Rng.bool (View.coins view))
       ~step:(fun guess ~round:_ ~inbox:_ -> (guess, Msg.silent))
       ~finish:(fun guess ~inbox:_ -> guess))

(* Broadcast own degree parity forever; decides nothing useful. Exists to
   exercise transcripts with non-trivial traffic in tests. *)
let chatter ~rounds () =
  Algo.pack
    (Algo.bcc1 ~name:"chatter"
       ~rounds:(fun ~n:_ -> rounds)
       ~init:(fun view -> View.degree view land 1 = 1)
       ~step:(fun parity ~round:_ ~inbox:_ -> (parity, Msg.of_bit parity))
       ~finish:(fun _parity ~inbox:_ -> true))
