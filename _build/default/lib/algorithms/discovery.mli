(** The tightness witnesses of §1.1: deterministic O(d·log n)-round BCC(1)
    algorithms for Connectivity and ConnectedComponents on graphs of
    maximum degree ≤ d, in both KT-0 and KT-1.

    Each vertex broadcasts its ID bit-by-bit (KT-0 only; in KT-1 port
    labels already carry IDs), then its input-neighbour ID list. Since
    broadcasts reach everyone, every vertex reconstructs the whole input
    graph and answers locally. On the paper's 2-regular promise inputs
    (d = 2) this runs in Θ(log n) rounds — matching the Ω(log n) lower
    bounds of Theorems 3.1 and 4.4 and standing in for the
    constant-arboricity sketching algorithm of [MT16] that the paper
    cites for tightness (see DESIGN.md substitutions).

    KT-0 instances must use the repository's default ID space 1..n (the
    decoder needs to know the universe of IDs); KT-1 instances may use
    any IDs that fit in [Codec.id_width] bits, 0 excluded (it pads). *)

val connectivity : knowledge:Bcclb_bcc.Instance.knowledge -> max_degree:int -> bool Bcclb_bcc.Algo.packed
(** YES iff the input graph is connected. When truncated (see
    {!Bcclb_bcc.Algo.truncate}) and the transcript does not determine the
    graph, guesses YES ("optimist"). *)

val connectivity_guess_no :
  knowledge:Bcclb_bcc.Instance.knowledge -> max_degree:int -> bool Bcclb_bcc.Algo.packed
(** Same algorithm, but guesses NO under truncation ("pessimist") — the
    lower-bound experiments quantify over both. *)

val components : knowledge:Bcclb_bcc.Instance.knowledge -> max_degree:int -> int Bcclb_bcc.Algo.packed
(** ConnectedComponents: each vertex outputs the smallest ID in its
    component. *)

val connectivity_truncated :
  knowledge:Bcclb_bcc.Instance.knowledge ->
  max_degree:int ->
  rounds:int ->
  optimist:bool ->
  bool Bcclb_bcc.Algo.packed
(** The t-round truncation used as the adversarial subject of the KT-0
    lower-bound experiments (E3): run at most [rounds] rounds of the
    optimal algorithm, then answer exactly if the transcript determines
    the graph, else guess YES ([optimist]) or NO. *)

val connectivity_partial :
  knowledge:Bcclb_bcc.Instance.knowledge ->
  max_degree:int ->
  rounds:int ->
  optimist:bool ->
  bool Bcclb_bcc.Algo.packed
(** A stronger truncated subject for E3: answers NO with certainty when
    the partially decoded edges already close a cycle on fewer than n
    vertices (a disconnection certificate), and guesses otherwise. *)
