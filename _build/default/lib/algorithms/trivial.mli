(** Degenerate baseline algorithms (0 rounds, or pure noise). Under the
    hard distribution μ of §3.1 each decision baseline errs with
    probability exactly 1/2 — the ceiling that any t-round algorithm in
    experiment E3 should be compared against. *)

val always_yes : unit -> bool Bcclb_bcc.Algo.packed
val always_no : unit -> bool Bcclb_bcc.Algo.packed

val coin_guess : unit -> bool Bcclb_bcc.Algo.packed
(** All vertices flip the same public coin. *)

val chatter : rounds:int -> unit -> bool Bcclb_bcc.Algo.packed
(** Broadcasts degree parity every round and answers YES; a traffic
    generator for transcript tests. *)
