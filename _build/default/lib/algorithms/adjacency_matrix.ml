open Bcclb_bcc
open Bcclb_graph

(* The dense-graph baseline: in KT-1 BCC(1), vertex v broadcasts in round
   p whether its port p-1 carries an input edge. After exactly n-1 rounds
   everyone holds the full adjacency matrix (sender identity is known per
   port, and the sender's port ordering is the shared ID order), so any
   graph problem is solved locally. Θ(n) rounds regardless of density —
   the generic upper bound that the O(log n) sparse algorithms beat. *)

type state = { view : View.t; heard : bool array array (* heard.(p).(q): port q of sender behind p *) }

let make ~name ~finish_of_graph =
  let rounds ~n = n - 1 in
  let init view =
    match View.kt1 view with
    | None -> invalid_arg (name ^ ": needs a KT-1 instance")
    | Some _ ->
      let ports = View.num_ports view in
      { view; heard = Bcclb_util.Arrayx.init_matrix ports ports (fun _ _ -> false) }
  in
  let step st ~round ~inbox =
    (* inbox carries round-1 broadcasts: bit for sender's port round-2. *)
    if round >= 2 then
      Array.iteri
        (fun p m -> match m with Msg.Word b -> st.heard.(p).(round - 2) <- Bcclb_util.Bits.to_bool b | Msg.Silent -> ())
        inbox;
    (st, Msg.of_bit (View.is_input_port st.view (round - 1)))
  in
  let reconstruct st ~inbox =
    let n = View.n st.view in
    Array.iteri
      (fun p m ->
        match m with
        | Msg.Word b -> st.heard.(p).(n - 2) <- Bcclb_util.Bits.to_bool b
        | Msg.Silent -> ())
      inbox;
    (* Sender behind port p has some ID; its port q leads to the vertex
       with the (q+1)-th smallest ID among the others. Build the graph on
       the shared ID order. *)
    let ids = View.all_ids st.view in
    let index = Hashtbl.create n in
    Array.iteri (fun i id -> Hashtbl.add index id i) ids;
    let edges = ref [] in
    (* Own row first. *)
    let own = Hashtbl.find index (View.id st.view) in
    for p = 0 to n - 2 do
      if View.is_input_port st.view p then begin
        let nbr = Hashtbl.find index (View.neighbor_id st.view p) in
        edges := (own, nbr) :: !edges
      end
    done;
    for p = 0 to n - 2 do
      let sender = Hashtbl.find index (View.neighbor_id st.view p) in
      (* The sender's port q skips itself in the sorted ID order. *)
      for q = 0 to n - 2 do
        if st.heard.(p).(q) then begin
          let other = if q >= sender then q + 1 else q in
          edges := (sender, other) :: !edges
        end
      done
    done;
    Graph.of_edges ~n !edges
  in
  let finish st ~inbox = finish_of_graph st (reconstruct st ~inbox) in
  Algo.bcc1 ~name ~rounds ~init ~step ~finish

let connectivity () =
  Algo.pack (make ~name:"adjacency-matrix-connectivity" ~finish_of_graph:(fun _st g -> Graph.is_connected g))

let components () =
  Algo.pack
    (make ~name:"adjacency-matrix-components"
       ~finish_of_graph:(fun st g ->
         let ids = View.all_ids st.view in
         let index = Hashtbl.create (View.n st.view) in
         Array.iteri (fun i id -> Hashtbl.add index id i) ids;
         let labels = Graph.components g in
         ids.(labels.(Hashtbl.find index (View.id st.view)))))
