(** Min-label flooding: the Θ(n log n)-round BCC(1) baseline (experiment
    E10's slow series).

    Works in both KT-0 and KT-1 (it never needs neighbour IDs): a vertex's
    label starts at its own ID and, phase by phase, drops to the minimum
    label heard over its input ports. With the default [phases] = ⌊n/2⌋+1
    it converges on any input (diameter ≤ n/2 per component of a
    2-regular graph; pass a larger value for general graphs). *)

val connectivity : ?phases:int -> unit -> bool Bcclb_bcc.Algo.packed
(** YES iff all converged labels coincide (checked by a final broadcast
    phase visible to everyone). *)

val components : ?phases:int -> unit -> int Bcclb_bcc.Algo.packed
(** Each vertex outputs its converged label: the smallest ID within
    [phases] hops, which is the smallest ID of its component once
    converged. *)
