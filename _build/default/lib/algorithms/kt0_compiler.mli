(** Knowledge translation (§1.1): compile any KT-1 BCC(b) algorithm into
    a KT-0 algorithm by prepending ⌈L/b⌉ ID-learning rounds (L = ID
    bits). Each vertex broadcasts its ID; everyone then knows the ID
    behind every port and the inner algorithm runs on a synthesised KT-1
    view over the instance's true wiring.

    The additive O(log n / b) cost is the paper's observation that KT-0
    and KT-1 coincide once b = Ω(log n) — and why proving the KT-1 lower
    bound (Theorem 4.4) is the stronger feat. *)

val compile : 'o Bcclb_bcc.Algo.packed -> 'o Bcclb_bcc.Algo.packed
(** The compiled algorithm rejects KT-1 instances (it expects to learn).
    Requires the default ID space (IDs fitting [Codec.id_width] bits). *)

val learning_rounds : n:int -> bandwidth:int -> int
(** ⌈L/b⌉. *)
