(** Small exact-integer and floating-point math helpers shared across the
    reproduction: logarithms for round bounds, binomials and harmonic
    numbers for the counting lemmas of §3. *)

val ilog2 : int -> int
(** Floor of log₂. @raise Invalid_argument on non-positive input. *)

val ceil_log2 : int -> int
(** Ceiling of log₂. @raise Invalid_argument on non-positive input. *)

val pow : int -> int -> int
(** [pow base exp] by binary exponentiation (unchecked overflow).
    @raise Invalid_argument on negative exponent. *)

val isqrt : int -> int
(** Integer square root (floor). @raise Invalid_argument on negative input. *)

val harmonic : int -> float
(** n-th harmonic number H_n; H_0 = 0. Appears in Lemmas 3.8 and 3.9. *)

val binomial : int -> int -> int
(** Exact binomial coefficient; 0 outside the triangle.
    @raise Invalid_argument on int overflow. *)

val factorial : int -> int
(** Exact factorial for n ≤ 20. @raise Invalid_argument beyond. *)

val gcd : int -> int -> int
(** Non-negative greatest common divisor. *)

val log2 : float -> float

val float_eq : ?eps:float -> float -> float -> bool
(** Relative-tolerance float comparison. *)

val sum_float : float list -> float

val mean : float list -> float
(** @raise Invalid_argument on empty list. *)
