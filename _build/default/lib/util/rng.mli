(** Deterministic pseudo-random number generator (splitmix64).

    Used everywhere in place of [Stdlib.Random] so that every experiment,
    test, and public-coin BCC execution is exactly reproducible from a
    seed. In the public-coin model of the paper (§1.2), all vertices share
    one random string: the simulator hands each vertex a {!copy} of the
    same generator. *)

type t

val create : seed:int -> t
(** Fresh generator from a seed. Equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy that will replay the same future stream. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val bits61 : t -> int
(** Next 61 uniformly random bits as a non-negative [int]. *)

val bool : t -> bool

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); rejection-sampled, unbiased.
    @raise Invalid_argument if [bound <= 0]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Uniform in the inclusive range. @raise Invalid_argument if [lo > hi]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** Uniform random permutation of [0..n-1]. *)

val choose : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val split : t -> t
(** Derive an independent generator (e.g. one per worker). *)
