type t = { width : int; value : int }

let max_width = 62

let make ~width ~value =
  if width < 0 || width > max_width then invalid_arg "Bits.make: width out of range";
  if value < 0 || (width < max_width && value lsr width <> 0) then
    invalid_arg "Bits.make: value does not fit in width";
  { width; value }

let empty = { width = 0; value = 0 }

let width t = t.width

let value t = t.value

let bit t i =
  if i < 0 || i >= t.width then invalid_arg "Bits.bit: index out of range";
  (t.value lsr i) land 1 = 1

let of_bool b = { width = 1; value = (if b then 1 else 0) }

let to_bool t =
  if t.width <> 1 then invalid_arg "Bits.to_bool: width is not 1";
  t.value = 1

let of_int ~width value = make ~width ~value

let append a b =
  if a.width + b.width > max_width then invalid_arg "Bits.append: result too wide";
  { width = a.width + b.width; value = a.value lor (b.value lsl a.width) }

let slice t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.width then invalid_arg "Bits.slice: out of range";
  { width = len; value = (t.value lsr pos) land ((1 lsl len) - 1) }

let equal a b = a.width = b.width && a.value = b.value

let compare a b =
  let c = Int.compare a.width b.width in
  if c <> 0 then c else Int.compare a.value b.value

let to_string t = String.init t.width (fun i -> if bit t (t.width - 1 - i) then '1' else '0')

let of_string s =
  let width = String.length s in
  let value =
    String.fold_left
      (fun acc c ->
        match c with
        | '0' -> acc * 2
        | '1' -> (acc * 2) + 1
        | _ -> invalid_arg "Bits.of_string: expected only '0' and '1'")
      0 s
  in
  make ~width ~value

let pp fmt t = Format.pp_print_string fmt (to_string t)
