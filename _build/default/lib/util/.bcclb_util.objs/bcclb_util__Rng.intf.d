lib/util/rng.mli:
