lib/util/arrayx.ml: Array Hashtbl List
