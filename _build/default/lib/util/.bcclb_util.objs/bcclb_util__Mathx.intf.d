lib/util/mathx.mli:
