lib/util/mathx.ml: Float List
