lib/util/arrayx.mli:
