lib/util/bits.ml: Format Int String
