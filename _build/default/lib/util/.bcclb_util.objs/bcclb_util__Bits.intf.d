lib/util/bits.mli: Format
