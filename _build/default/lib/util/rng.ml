type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* 61 random bits: the largest power of two comfortably below OCaml's
   63-bit native int, so [1 lsl 61] is itself representable. *)
let bits61 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 3)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Unbiased bounded sampling by rejection on the top of the 61-bit range. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let range = 1 lsl 61 in
  let limit = range - (range mod bound) in
  let rec loop () =
    let r = bits61 t in
    if r < limit then r mod bound else loop ()
  in
  loop ()

let int_in_range t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.int_in_range: lo > hi";
  lo + int t (hi - lo + 1)

let float t =
  Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) *. (1.0 /. 9007199254740992.0)

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle_in_place t a;
  a

let choose t l =
  match l with
  | [] -> invalid_arg "Rng.choose: empty list"
  | _ -> List.nth l (int t (List.length l))

let split t =
  let seed = Int64.to_int (next_int64 t) in
  create ~seed
