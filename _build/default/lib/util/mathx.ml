let ilog2 n =
  if n <= 0 then invalid_arg "Mathx.ilog2: argument must be positive";
  let rec loop acc n = if n <= 1 then acc else loop (acc + 1) (n lsr 1) in
  loop 0 n

let ceil_log2 n =
  if n <= 0 then invalid_arg "Mathx.ceil_log2: argument must be positive";
  let l = ilog2 n in
  if 1 lsl l = n then l else l + 1

let pow base exp =
  if exp < 0 then invalid_arg "Mathx.pow: negative exponent";
  let rec loop acc base exp =
    if exp = 0 then acc
    else if exp land 1 = 1 then loop (acc * base) (base * base) (exp asr 1)
    else loop acc (base * base) (exp asr 1)
  in
  loop 1 base exp

let isqrt n =
  if n < 0 then invalid_arg "Mathx.isqrt: negative argument";
  if n < 2 then n
  else begin
    let x = ref (int_of_float (sqrt (float_of_int n))) in
    while !x * !x > n do decr x done;
    while (!x + 1) * (!x + 1) <= n do incr x done;
    !x
  end

let harmonic n =
  let rec loop acc i = if i > n then acc else loop (acc +. (1.0 /. float_of_int i)) (i + 1) in
  loop 0.0 1

let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let rec loop acc i =
      if i > k then acc
      else begin
        let acc = acc * (n - k + i) in
        if acc < 0 then invalid_arg "Mathx.binomial: overflow";
        loop (acc / i) (i + 1)
      end
    in
    loop 1 1
  end

let factorial n =
  if n < 0 then invalid_arg "Mathx.factorial: negative argument";
  if n > 20 then invalid_arg "Mathx.factorial: overflow (use Bignum.Factorial)";
  let rec loop acc i = if i > n then acc else loop (acc * i) (i + 1) in
  loop 1 1

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let log2 x = log x /. log 2.0

let float_eq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let sum_float l = List.fold_left ( +. ) 0.0 l

let mean l =
  match l with
  | [] -> invalid_arg "Mathx.mean: empty list"
  | _ -> sum_float l /. float_of_int (List.length l)
