let swap a i j =
  let tmp = a.(i) in
  a.(i) <- a.(j);
  a.(j) <- tmp

let init_matrix rows cols f = Array.init rows (fun i -> Array.init cols (fun j -> f i j))

let matrix_copy m = Array.map Array.copy m

let find_index p a =
  let n = Array.length a in
  let rec loop i = if i >= n then None else if p a.(i) then Some i else loop (i + 1) in
  loop 0

let count p a = Array.fold_left (fun acc x -> if p x then acc + 1 else acc) 0 a

let min_by f a =
  if Array.length a = 0 then invalid_arg "Arrayx.min_by: empty array";
  let best = ref a.(0) in
  let best_key = ref (f a.(0)) in
  for i = 1 to Array.length a - 1 do
    let k = f a.(i) in
    if k < !best_key then begin
      best := a.(i);
      best_key := k
    end
  done;
  !best

let sum a = Array.fold_left ( + ) 0 a

let sum_float a = Array.fold_left ( +. ) 0.0 a

let for_all2 p a b =
  if Array.length a <> Array.length b then invalid_arg "Arrayx.for_all2: length mismatch";
  let n = Array.length a in
  let rec loop i = i >= n || (p a.(i) b.(i) && loop (i + 1)) in
  loop 0

let rev_in_place a =
  let n = Array.length a in
  for i = 0 to (n / 2) - 1 do
    swap a i (n - 1 - i)
  done

let rotate_left a k =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let k = ((k mod n) + n) mod n in
    Array.init n (fun i -> a.((i + k) mod n))
  end

let take n l =
  let rec loop acc n l =
    if n <= 0 then List.rev acc
    else match l with [] -> List.rev acc | x :: tl -> loop (x :: acc) (n - 1) tl
  in
  loop [] n l

let range lo hi =
  let rec loop acc i = if i < lo then acc else loop (i :: acc) (i - 1) in
  loop [] (hi - 1)

let group_by_key pairs =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (k, v) ->
      let cur = try Hashtbl.find tbl k with Not_found -> [] in
      Hashtbl.replace tbl k (v :: cur))
    pairs;
  Hashtbl.fold (fun k vs acc -> (k, List.rev vs) :: acc) tbl []
