(** Array and list helpers used across the codebase. *)

val swap : 'a array -> int -> int -> unit

val init_matrix : int -> int -> (int -> int -> 'a) -> 'a array array

val matrix_copy : 'a array array -> 'a array array
(** Deep copy of a 2-d array. *)

val find_index : ('a -> bool) -> 'a array -> int option

val count : ('a -> bool) -> 'a array -> int

val min_by : ('a -> 'b) -> 'a array -> 'a
(** Element minimising [f] (polymorphic compare on keys).
    @raise Invalid_argument on empty array. *)

val sum : int array -> int
val sum_float : float array -> float

val for_all2 : ('a -> 'b -> bool) -> 'a array -> 'b array -> bool
(** @raise Invalid_argument on length mismatch. *)

val rev_in_place : 'a array -> unit

val rotate_left : 'a array -> int -> 'a array
(** Fresh array rotated left by [k] (any sign). *)

val take : int -> 'a list -> 'a list
(** First [n] elements (fewer if the list is shorter). *)

val range : int -> int -> int list
(** [range lo hi] is [lo; lo+1; …; hi-1]. *)

val group_by_key : ('k * 'v) list -> ('k * 'v list) list
(** Group values by key; order of groups unspecified, values keep order. *)
