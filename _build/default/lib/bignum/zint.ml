type sign = Pos | Neg

type t = { sign : sign; mag : Nat.t }

(* Canonical form: zero is always Pos. *)
let make sign mag = if Nat.is_zero mag then { sign = Pos; mag } else { sign; mag }

let zero = { sign = Pos; mag = Nat.zero }
let one = { sign = Pos; mag = Nat.one }
let minus_one = { sign = Neg; mag = Nat.one }

let of_nat mag = { sign = Pos; mag }

let of_int n = if n >= 0 then of_nat (Nat.of_int n) else make Neg (Nat.of_int (-n))

let to_int_opt t =
  match Nat.to_int_opt t.mag with
  | None -> None
  | Some m -> Some (match t.sign with Pos -> m | Neg -> -m)

let is_zero t = Nat.is_zero t.mag

let sign t = if Nat.is_zero t.mag then 0 else match t.sign with Pos -> 1 | Neg -> -1

let neg t = make (match t.sign with Pos -> Neg | Neg -> Pos) t.mag

let abs t = { t with sign = Pos }

let abs_nat t = t.mag

let compare a b =
  match (a.sign, b.sign) with
  | Pos, Neg -> if is_zero a && is_zero b then 0 else 1
  | Neg, Pos -> -1
  | Pos, Pos -> Nat.compare a.mag b.mag
  | Neg, Neg -> Nat.compare b.mag a.mag

let equal a b = compare a b = 0

let add a b =
  if a.sign = b.sign then make a.sign (Nat.add a.mag b.mag)
  else begin
    let c = Nat.compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (Nat.sub a.mag b.mag)
    else make b.sign (Nat.sub b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul a b = make (if a.sign = b.sign then Pos else Neg) (Nat.mul a.mag b.mag)

let mul_int a n = mul a (of_int n)

(* Truncated division (round toward zero), matching OCaml's [/] and [mod]. *)
let divmod a b =
  if is_zero b then raise Division_by_zero;
  let q, r = Nat.divmod a.mag b.mag in
  let q = make (if a.sign = b.sign then Pos else Neg) q in
  let r = make a.sign r in
  (q, r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

(* [divexact a b] assumes b divides a exactly; checked. *)
let divexact a b =
  let q, r = divmod a b in
  if not (is_zero r) then invalid_arg "Zint.divexact: division is not exact";
  q

let gcd a b = of_nat (Nat.gcd a.mag b.mag)

let pow a k = make (if a.sign = Neg && k land 1 = 1 then Neg else Pos) (Nat.pow a.mag k)

let to_string t = (match t.sign with Pos -> "" | Neg -> "-") ^ Nat.to_string t.mag

let of_string s =
  if s = "" then invalid_arg "Zint.of_string: empty string";
  if s.[0] = '-' then make Neg (Nat.of_string (String.sub s 1 (String.length s - 1)))
  else of_nat (Nat.of_string s)

let to_float t = (match t.sign with Pos -> 1.0 | Neg -> -1.0) *. Nat.to_float t.mag

let pp fmt t = Format.pp_print_string fmt (to_string t)
