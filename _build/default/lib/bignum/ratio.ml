type t = { num : Zint.t; den : Zint.t }

(* Canonical form: den > 0, gcd(|num|, den) = 1, zero is 0/1. *)
let make num den =
  if Zint.is_zero den then raise Division_by_zero;
  if Zint.is_zero num then { num = Zint.zero; den = Zint.one }
  else begin
    let g = Zint.gcd num den in
    let num = Zint.divexact num g and den = Zint.divexact den g in
    if Zint.sign den < 0 then { num = Zint.neg num; den = Zint.neg den } else { num; den }
  end

let zero = { num = Zint.zero; den = Zint.one }
let one = { num = Zint.one; den = Zint.one }

let of_zint z = { num = z; den = Zint.one }
let of_int n = of_zint (Zint.of_int n)
let of_ints num den = make (Zint.of_int num) (Zint.of_int den)

let num t = t.num
let den t = t.den

let is_zero t = Zint.is_zero t.num

let sign t = Zint.sign t.num

let neg t = { t with num = Zint.neg t.num }

let add a b = make (Zint.add (Zint.mul a.num b.den) (Zint.mul b.num a.den)) (Zint.mul a.den b.den)

let sub a b = add a (neg b)

let mul a b = make (Zint.mul a.num b.num) (Zint.mul a.den b.den)

let inv t =
  if is_zero t then raise Division_by_zero;
  make t.den t.num

let div a b = mul a (inv b)

let compare a b = Zint.compare (Zint.mul a.num b.den) (Zint.mul b.num a.den)

let equal a b = Zint.equal a.num b.num && Zint.equal a.den b.den

let to_float t = Zint.to_float t.num /. Zint.to_float t.den

let to_string t =
  if Zint.equal t.den Zint.one then Zint.to_string t.num
  else Zint.to_string t.num ^ "/" ^ Zint.to_string t.den

let pp fmt t = Format.pp_print_string fmt (to_string t)
