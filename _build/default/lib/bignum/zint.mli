(** Arbitrary-precision signed integers on top of {!Nat}.

    Used by the fraction-free Bareiss elimination that verifies
    rank(Mⁿ) = Bₙ (Theorem 2.3) and rank(Eⁿ) = r (Lemma 4.1) exactly. *)

type t

val zero : t
val one : t
val minus_one : t

val of_nat : Nat.t -> t
val of_int : int -> t
val to_int_opt : t -> int option

val is_zero : t -> bool

val sign : t -> int
(** -1, 0, or 1. *)

val neg : t -> t
val abs : t -> t

val abs_nat : t -> Nat.t
(** Magnitude. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val mul_int : t -> int -> t

val divmod : t -> t -> t * t
(** Truncated division (OCaml convention: remainder has the dividend's
    sign). @raise Division_by_zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val divexact : t -> t -> t
(** Exact division. @raise Invalid_argument if the remainder is non-zero —
    Bareiss steps are exact by construction, so a failure here signals a
    bug, not an input condition. *)

val gcd : t -> t -> t
(** Non-negative gcd of magnitudes. *)

val pow : t -> int -> t

val to_string : t -> string
val of_string : string -> t
val to_float : t -> float
val pp : Format.formatter -> t -> unit
