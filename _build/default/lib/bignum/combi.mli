(** Exact combinatorial counts used by the paper's lemmas.

    All results are {!Nat} values: Bₙ = 2^{Θ(n log n)} (Theorem 2.3) and
    r = n!/(2^{n/2}(n/2)!) (Lemma 4.1) overflow machine integers around
    n = 20–25, and the communication lower bounds are log₂ of these. *)

val factorial : int -> Nat.t

val binomial : int -> int -> Nat.t
(** Zero outside the triangle. *)

val bell : int -> Nat.t
(** Bₙ, the number of set partitions of [n]. *)

val bell_numbers : int -> Nat.t array
(** [bell_numbers n] is [|B₀; …; Bₙ|], computed in one Bell-triangle pass. *)

val stirling2_row : int -> Nat.t array
(** Row [n] of Stirling numbers of the second kind: S(n,0), …, S(n,n);
    their sum is Bₙ. *)

val perfect_matchings : int -> Nat.t
(** Number of perfect matchings of the complete graph on [n] (even)
    vertices — the dimension r of Eⁿ in Lemma 4.1.
    @raise Invalid_argument on odd or negative [n]. *)

val cycles_on : int -> Nat.t
(** Distinct (undirected, unrooted) cycles on k ≥ 3 labelled vertices:
    (k−1)!/2. @raise Invalid_argument for k < 3. *)

val one_cycle_count : int -> Nat.t
(** |V₁| of §3.1: one-cycle input graphs on n labelled vertices. *)

val two_cycle_count : int -> Nat.t
(** |V₂| of §3.1: two-disjoint-cycle input graphs on n labelled vertices,
    both cycle lengths ≥ 3; zero for n < 6. *)
