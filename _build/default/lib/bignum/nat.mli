(** Arbitrary-precision natural numbers.

    The sealed build environment has no [zarith], but the paper's counting
    arguments need exact values far beyond [int64]: Bell numbers Bₙ
    (Theorem 2.3), the perfect-matching count r = n!/(2^{n/2}(n/2)!)
    (Lemma 4.1), and exact determinant arithmetic in the Bareiss rank
    computation. This module is a small, dependency-free bignum sufficient
    for those uses (numbers up to tens of thousands of bits). *)

type t

val zero : t
val one : t
val two : t

val is_zero : t -> bool

val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val to_int_opt : t -> int option
(** [Some n] iff the value fits a native [int]. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val add : t -> t -> t

val sub : t -> t -> t
(** @raise Invalid_argument if the result would be negative. *)

val mul : t -> t -> t
val mul_int : t -> int -> t

val divmod : t -> t -> t * t
(** Euclidean quotient and remainder. @raise Division_by_zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val divmod_small : t -> int -> t * int
(** Fast path for single-limb divisors (0 < d < 2^26). *)

val gcd : t -> t -> t

val pow : t -> int -> t
(** @raise Invalid_argument on negative exponent. *)

val num_bits : t -> int
(** Position of the highest set bit plus one; 0 for zero. *)

val bit : t -> int -> bool

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val to_string : t -> string
(** Decimal. *)

val of_string : string -> t
(** Decimal, underscores allowed. @raise Invalid_argument otherwise. *)

val to_float : t -> float
(** Nearest float (inf on overflow). *)

val log2 : t -> float
(** Accurate log₂, usable far beyond float range. @raise Invalid_argument on zero. *)

val pp : Format.formatter -> t -> unit
