(* Little-endian limbs in base 2^26, canonical form: no trailing zero limb.
   Zero is the empty array. Base 2^26 keeps limb products (2^52) plus carry
   accumulation safely inside a 63-bit native int even for numbers of a
   thousand limbs, which is far beyond anything this project computes. *)

type t = int array

let base_bits = 26
let base = 1 lsl base_bits
let mask = base - 1

let zero : t = [||]
let is_zero (t : t) = Array.length t = 0

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Nat.of_int: negative argument";
  let rec limbs acc n = if n = 0 then List.rev acc else limbs ((n land mask) :: acc) (n lsr base_bits) in
  Array.of_list (limbs [] n)

let one = of_int 1
let two = of_int 2

let to_int_opt (t : t) =
  let bits = Array.length t * base_bits in
  if bits <= 62 then begin
    let v = ref 0 in
    for i = Array.length t - 1 downto 0 do
      v := (!v lsl base_bits) lor t.(i)
    done;
    Some !v
  end
  else begin
    (* May still fit: check leading limbs. *)
    let v = ref 0 in
    let ok = ref true in
    for i = Array.length t - 1 downto 0 do
      if !v > (max_int - t.(i)) lsr base_bits then ok := false
      else v := (!v lsl base_bits) lor t.(i)
    done;
    if !ok then Some !v else None
  end

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else begin
    let rec loop i =
      if i < 0 then 0
      else begin
        let c = Int.compare a.(i) b.(i) in
        if c <> 0 then c else loop (i - 1)
      end
    in
    loop (la - 1)
  end

let equal a b = compare a b = 0

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb + 1 in
  let r = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  normalize r

(* [sub a b] requires a >= b. *)
let sub (a : t) (b : t) : t =
  if compare a b < 0 then invalid_arg "Nat.sub: would be negative";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  normalize r

let mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let s = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- s land mask;
        carry := s lsr base_bits
      done;
      (* Propagate the final carry, which may itself be wider than a limb. *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land mask;
        carry := s lsr base_bits;
        incr k
      done
    done;
    normalize r
  end

let mul_int a n = mul a (of_int n)

let divmod_small (a : t) d =
  if d <= 0 then invalid_arg "Nat.divmod_small: divisor must be positive";
  if d >= base then invalid_arg "Nat.divmod_small: divisor too large";
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (normalize q, !rem)

let num_bits (t : t) =
  let l = Array.length t in
  if l = 0 then 0
  else begin
    let top = t.(l - 1) in
    ((l - 1) * base_bits) + (Bcclb_util.Mathx.ilog2 top + 1)
  end

let bit (t : t) i =
  let limb = i / base_bits and off = i mod base_bits in
  if limb >= Array.length t then false else (t.(limb) lsr off) land 1 = 1

let shift_left (t : t) k =
  if k < 0 then invalid_arg "Nat.shift_left: negative shift";
  if is_zero t then zero
  else begin
    let limb_shift = k / base_bits and bit_shift = k mod base_bits in
    let la = Array.length t in
    let r = Array.make (la + limb_shift + 1) 0 in
    for i = 0 to la - 1 do
      let v = t.(i) lsl bit_shift in
      r.(i + limb_shift) <- r.(i + limb_shift) lor (v land mask);
      r.(i + limb_shift + 1) <- r.(i + limb_shift + 1) lor (v lsr base_bits)
    done;
    normalize r
  end

let shift_right (t : t) k =
  if k < 0 then invalid_arg "Nat.shift_right: negative shift";
  let limb_shift = k / base_bits and bit_shift = k mod base_bits in
  let la = Array.length t in
  if limb_shift >= la then zero
  else begin
    let n = la - limb_shift in
    let r = Array.make n 0 in
    for i = 0 to n - 1 do
      let lo = t.(i + limb_shift) lsr bit_shift in
      let hi = if i + limb_shift + 1 < la && bit_shift > 0 then t.(i + limb_shift + 1) lsl (base_bits - bit_shift) else 0 in
      r.(i) <- (lo lor hi) land mask
    done;
    normalize r
  end

(* Binary long division. Number sizes in this project stay in the low
   thousands of bits, where the simplicity beats Knuth's algorithm D. *)
let divmod (a : t) (b : t) =
  if is_zero b then raise Division_by_zero;
  let c = compare a b in
  if c < 0 then (zero, a)
  else if c = 0 then (one, zero)
  else begin
    match (to_int_opt a, to_int_opt b) with
    | Some x, Some y -> (of_int (x / y), of_int (x mod y))
    | _, Some y when y < base ->
      let q, r = divmod_small a y in
      (q, of_int r)
    | _ ->
      let shift = num_bits a - num_bits b in
      let q = Array.make (shift / base_bits + 1) 0 in
      let rem = ref a in
      for i = shift downto 0 do
        let d = shift_left b i in
        if compare !rem d >= 0 then begin
          rem := sub !rem d;
          q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
        end
      done;
      (normalize q, !rem)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

let pow a k =
  if k < 0 then invalid_arg "Nat.pow: negative exponent";
  let rec loop acc a k =
    if k = 0 then acc
    else if k land 1 = 1 then loop (mul acc a) (mul a a) (k asr 1)
    else loop acc (mul a a) (k asr 1)
  in
  loop one a k

let to_string (t : t) =
  if is_zero t then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec loop t =
      if not (is_zero t) then begin
        let q, r = divmod_small t 10 in
        Buffer.add_char buf (Char.chr (Char.code '0' + r));
        loop q
      end
    in
    loop t;
    let s = Buffer.contents buf in
    String.init (String.length s) (fun i -> s.[String.length s - 1 - i])
  end

let of_string s =
  if s = "" then invalid_arg "Nat.of_string: empty string";
  String.fold_left
    (fun acc c ->
      match c with
      | '0' .. '9' -> add (mul_int acc 10) (of_int (Char.code c - Char.code '0'))
      | '_' -> acc
      | _ -> invalid_arg "Nat.of_string: expected digits")
    zero s

let to_float (t : t) = Array.fold_right (fun limb acc -> (acc *. float_of_int base) +. float_of_int limb) t 0.0

let log2 (t : t) =
  if is_zero t then invalid_arg "Nat.log2: zero";
  let bits = num_bits t in
  if bits <= 52 then Bcclb_util.Mathx.log2 (to_float t)
  else begin
    (* Use the top 52 bits as a mantissa to keep precision. *)
    let shifted = shift_right t (bits - 52) in
    Bcclb_util.Mathx.log2 (to_float shifted) +. float_of_int (bits - 52)
  end

let pp fmt t = Format.pp_print_string fmt (to_string t)
