(** Exact rational numbers, always in lowest terms with positive
    denominator. Used for exact Gaussian elimination cross-checks and for
    exact probability mass accounting in the hard distribution μ of §3.1. *)

type t

val zero : t
val one : t

val make : Zint.t -> Zint.t -> t
(** [make num den], normalised. @raise Division_by_zero on zero denominator. *)

val of_zint : Zint.t -> t
val of_int : int -> t

val of_ints : int -> int -> t
(** [of_ints num den]. @raise Division_by_zero on zero denominator. *)

val num : t -> Zint.t
val den : t -> Zint.t
(** Always positive. *)

val is_zero : t -> bool

val sign : t -> int

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val inv : t -> t
(** @raise Division_by_zero on zero. *)

val div : t -> t -> t
(** @raise Division_by_zero on zero divisor. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val to_float : t -> float
val to_string : t -> string
val pp : Format.formatter -> t -> unit
