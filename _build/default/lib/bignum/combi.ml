let factorial n =
  if n < 0 then invalid_arg "Combi.factorial: negative argument";
  let rec loop acc i = if i > n then acc else loop (Nat.mul_int acc i) (i + 1) in
  loop Nat.one 1

let binomial n k =
  if k < 0 || k > n then Nat.zero
  else begin
    let k = min k (n - k) in
    let rec loop acc i =
      if i > k then acc
      else begin
        let acc = Nat.mul_int acc (n - k + i) in
        loop (fst (Nat.divmod_small acc i)) (i + 1)
      end
    in
    loop Nat.one 1
  end

(* Bell numbers via the Bell triangle: each row is built from the previous
   by prefix sums; the first element of row n is B_n. *)
let bell_numbers n_max =
  if n_max < 0 then invalid_arg "Combi.bell_numbers: negative argument";
  let bells = Array.make (n_max + 1) Nat.one in
  let row = ref [| Nat.one |] in
  for n = 1 to n_max do
    let prev = !row in
    let len = Array.length prev in
    let next = Array.make (len + 1) Nat.zero in
    next.(0) <- prev.(len - 1);
    for i = 0 to len - 1 do
      next.(i + 1) <- Nat.add next.(i) prev.(i)
    done;
    bells.(n) <- next.(0);
    row := next
  done;
  bells

let bell n = (bell_numbers n).(n)

(* Stirling numbers of the second kind, row n: S(n, 0..n). *)
let stirling2_row n =
  if n < 0 then invalid_arg "Combi.stirling2_row: negative argument";
  let row = ref [| Nat.one |] in
  for m = 1 to n do
    let prev = !row in
    let next = Array.make (m + 1) Nat.zero in
    for k = 1 to m do
      let carry = if k < m then Nat.mul_int prev.(k) k else Nat.zero in
      next.(k) <- Nat.add prev.(k - 1) carry
    done;
    row := next
  done;
  !row

(* Number of perfect matchings of [2m] = (2m)! / (2^m m!), the dimension r
   of the TwoPartition matrix E^n in Lemma 4.1 (n = 2m). *)
let perfect_matchings n =
  if n < 0 || n land 1 = 1 then invalid_arg "Combi.perfect_matchings: n must be even and non-negative";
  let m = n / 2 in
  let numer = factorial n in
  let denom = Nat.mul (Nat.pow Nat.two m) (factorial m) in
  Nat.div numer denom

(* Number of distinct cycles on k >= 3 labelled vertices: (k-1)!/2. *)
let cycles_on k =
  if k < 3 then invalid_arg "Combi.cycles_on: cycles need length at least 3";
  fst (Nat.divmod_small (factorial (k - 1)) 2)

(* |V1|: one-cycle instances on n labelled vertices, as input graphs. *)
let one_cycle_count n = cycles_on n

(* |V2|: unordered pairs of disjoint cycles covering [n], each length >= 3
   (the TwoCycle NO-instances of §3). *)
let two_cycle_count n =
  if n < 6 then Nat.zero
  else begin
    let total = ref Nat.zero in
    for i = 3 to n / 2 do
      let ways = Nat.mul (binomial n i) (Nat.mul (cycles_on i) (cycles_on (n - i))) in
      (* Choosing S then its complement double-counts the balanced split. *)
      let ways = if 2 * i = n then fst (Nat.divmod_small ways 2) else ways in
      total := Nat.add !total ways
    done;
    !total
  end
