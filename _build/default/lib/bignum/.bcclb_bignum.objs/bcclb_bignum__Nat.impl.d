lib/bignum/nat.ml: Array Bcclb_util Buffer Char Format Int List String
