lib/bignum/ratio.mli: Format Zint
