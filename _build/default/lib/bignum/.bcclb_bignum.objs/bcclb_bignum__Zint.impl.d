lib/bignum/zint.ml: Format Nat String
