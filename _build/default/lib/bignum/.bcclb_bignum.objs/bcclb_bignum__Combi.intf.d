lib/bignum/combi.mli: Nat
