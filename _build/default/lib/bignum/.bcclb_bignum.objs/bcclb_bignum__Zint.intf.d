lib/bignum/zint.mli: Format Nat
