lib/bignum/combi.ml: Array Nat
