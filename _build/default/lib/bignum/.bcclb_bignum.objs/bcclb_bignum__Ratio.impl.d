lib/bignum/ratio.ml: Format Zint
