lib/graph/mst.mli: Graph
