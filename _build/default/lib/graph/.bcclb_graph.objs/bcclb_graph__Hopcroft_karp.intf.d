lib/graph/hopcroft_karp.mli:
