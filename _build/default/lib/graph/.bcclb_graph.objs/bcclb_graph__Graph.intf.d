lib/graph/graph.mli: Format Union_find
