lib/graph/gen.mli: Bcclb_util Graph
