lib/graph/union_find.ml: Array Fun Hashtbl
