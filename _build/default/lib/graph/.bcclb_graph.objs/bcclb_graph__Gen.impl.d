lib/graph/gen.ml: Array Arrayx Bcclb_util Fun Graph Hashtbl List Rng
