lib/graph/graph.ml: Array Format Hashtbl Int List Union_find
