lib/graph/cycles.mli: Format Graph
