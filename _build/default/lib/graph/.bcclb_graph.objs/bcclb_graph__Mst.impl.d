lib/graph/mst.ml: Bcclb_util Graph Int List Union_find
