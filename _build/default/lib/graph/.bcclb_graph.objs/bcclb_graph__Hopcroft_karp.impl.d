lib/graph/hopcroft_karp.ml: Array Queue
