lib/graph/cycles.ml: Array Bcclb_util Format Graph Hashtbl Int List
