(** Disjoint unions of cycles in canonical form.

    The instances of the TwoCycle problem (§3) and the MultiCycle problem
    (§4) are exactly the 2-regular graphs, i.e. disjoint cycle unions with
    every cycle of length ≥ 3. This module gives them a canonical,
    comparable representation so that census enumeration and the
    structure-level crossing operation can use them as hash keys: each
    cycle is rotated to start at its smallest vertex and oriented toward
    its smaller neighbour, and cycles are sorted by smallest vertex. *)

type t

val canonical_cycle : int array -> int array
(** Canonical rotation/reflection of one cycle given as a vertex sequence.
    @raise Invalid_argument on length < 3. *)

val make : int array list -> t
(** Canonicalise a family of vertex-disjoint cycles.
    @raise Invalid_argument if cycles share a vertex or one is too short. *)

val cycles : t -> int array list
(** The canonical cycles, sorted by their smallest vertex. Do not mutate. *)

val num_cycles : t -> int
val num_vertices : t -> int
val lengths : t -> int list

val equal : t -> t -> bool
val compare_t : t -> t -> int

val to_edges : t -> (int * int) list

val to_graph : n:int -> t -> Graph.t

val of_graph : Graph.t -> t option
(** Decompose a 2-regular graph into its cycles; [None] if the graph is
    not 2-regular or has a cycle of length < 3 (impossible for simple
    graphs, kept as a defensive check). *)

val pp : Format.formatter -> t -> unit
