(** Disjoint-set forest with path compression and union by rank.

    The workhorse behind connected components, the join of set partitions
    (P_A ∨ P_B is computed by uniting within parts), and the correctness
    oracle for every connectivity algorithm in the repository. *)

type t

val create : int -> t
(** [create n]: n singleton sets {0}, …, {n−1}. *)

val size : t -> int

val components : t -> int
(** Current number of disjoint sets. *)

val find : t -> int -> int
(** Representative of the set containing the element. *)

val union : t -> int -> int -> bool
(** Merge two sets; [true] iff they were distinct. *)

val same : t -> int -> int -> bool

val labels : t -> int array
(** [labels t].(v) is the smallest element of v's set — a canonical
    component labelling, the output format of ConnectedComponents. *)
