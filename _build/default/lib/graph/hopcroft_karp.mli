(** Hopcroft–Karp maximum bipartite matching, and the k-matchings of the
    Polygamous Hall's Theorem (Theorem 2.1).

    The KT-0 lower bound (Theorem 3.1) packs the indistinguishability
    graph with |V₁| disjoint "stars" of Θ(log n) two-cycle leaves each;
    {!k_matching} constructs such a packing explicitly by matching in the
    graph where every left (one-cycle) vertex is cloned k times. *)

type result = {
  size : int;  (** Cardinality of the maximum matching. *)
  pair_left : int array;  (** Matched right vertex of each left vertex, or −1. *)
  pair_right : int array;  (** Matched left vertex of each right vertex, or −1. *)
}

val max_matching : nl:int -> nr:int -> adj:int array array -> result
(** [adj.(u)] lists the right-neighbours of left vertex [u].
    @raise Invalid_argument on malformed adjacency. *)

val k_matching : k:int -> nl:int -> nr:int -> adj:int array array -> int array array option
(** [Some groups] with [groups.(u)] the k pairwise-disjoint right vertices
    assigned to left vertex [u], if every left vertex can get k; [None]
    otherwise. By Theorem 2.1 this succeeds whenever |N(S)| ≥ k|S| for all
    S ⊆ L. @raise Invalid_argument if k ≤ 0. *)
