type t = { parent : int array; rank : int array; mutable components : int }

let create n =
  if n < 0 then invalid_arg "Union_find.create: negative size";
  { parent = Array.init n Fun.id; rank = Array.make n 0; components = n }

let size t = Array.length t.parent

let components t = t.components

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t x y =
  let rx = find t x and ry = find t y in
  if rx = ry then false
  else begin
    t.components <- t.components - 1;
    if t.rank.(rx) < t.rank.(ry) then t.parent.(rx) <- ry
    else if t.rank.(rx) > t.rank.(ry) then t.parent.(ry) <- rx
    else begin
      t.parent.(ry) <- rx;
      t.rank.(rx) <- t.rank.(rx) + 1
    end;
    true
  end

let same t x y = find t x = find t y

let labels t =
  (* Canonical label: the smallest member of each component. *)
  let n = size t in
  let min_of_root = Hashtbl.create 16 in
  for v = n - 1 downto 0 do
    Hashtbl.replace min_of_root (find t v) v
  done;
  Array.init n (fun v -> Hashtbl.find min_of_root (find t v))
