open Bcclb_util

let cycle_of_order order =
  let n = Array.length order in
  if n < 3 then invalid_arg "Gen.cycle_of_order: need at least 3 vertices";
  Graph.of_edges ~n (List.init n (fun i -> (order.(i), order.((i + 1) mod n))))

let cycle n = cycle_of_order (Array.init n Fun.id)

let random_cycle rng n = cycle_of_order (Rng.permutation rng n)

let multicycle_of_lengths rng n lengths =
  if List.exists (fun l -> l < 3) lengths then invalid_arg "Gen.multicycle_of_lengths: cycle length < 3";
  if Arrayx.sum (Array.of_list lengths) <> n then invalid_arg "Gen.multicycle_of_lengths: lengths must sum to n";
  let perm = Rng.permutation rng n in
  let edges = ref [] in
  let pos = ref 0 in
  List.iter
    (fun len ->
      let c = Array.sub perm !pos len in
      for i = 0 to len - 1 do
        edges := (c.(i), c.((i + 1) mod len)) :: !edges
      done;
      pos := !pos + len)
    lengths;
  Graph.of_edges ~n !edges

let random_two_cycles rng n =
  if n < 6 then invalid_arg "Gen.random_two_cycles: need n >= 6";
  let i = Rng.int_in_range rng ~lo:3 ~hi:(n - 3) in
  multicycle_of_lengths rng n [ i; n - i ]

let random_multicycle rng n =
  if n < 3 then invalid_arg "Gen.random_multicycle: need n >= 3";
  (* Random composition of n into parts of size >= 3. *)
  let rec split acc remaining =
    if remaining < 6 then remaining :: acc
    else begin
      (* Stop with probability 1/2, otherwise carve off a random part. *)
      if Rng.bool rng then remaining :: acc
      else begin
        let part = Rng.int_in_range rng ~lo:3 ~hi:(remaining - 3) in
        split (part :: acc) (remaining - part)
      end
    end
  in
  multicycle_of_lengths rng n (split [] n)

let gnp rng n p =
  if p < 0.0 || p > 1.0 then invalid_arg "Gen.gnp: p out of range";
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.float rng < p then edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let random_connected rng n =
  if n < 1 then invalid_arg "Gen.random_connected: need n >= 1";
  (* Random spanning tree (random attachment) plus a sprinkle of extras. *)
  let perm = Rng.permutation rng n in
  let edges = ref [] in
  for i = 1 to n - 1 do
    let j = Rng.int rng i in
    edges := (perm.(i), perm.(j)) :: !edges
  done;
  let extras = Rng.int rng (n + 1) in
  for _ = 1 to extras do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then edges := (u, v) :: !edges
  done;
  Graph.of_edges ~n !edges

let random_forest rng n =
  let edges = ref [] in
  for i = 1 to n - 1 do
    (* Attach i to an earlier vertex with probability 1/2: a random forest. *)
    if Rng.bool rng then begin
      let j = Rng.int rng i in
      edges := (i, j) :: !edges
    end
  done;
  Graph.of_edges ~n !edges

let random_bounded_degree rng n d =
  if d < 0 then invalid_arg "Gen.random_bounded_degree: negative degree bound";
  let deg = Array.make n 0 in
  let present = Hashtbl.create (n * (d + 1)) in
  let edges = ref [] in
  let attempts = n * (d + 1) * 4 in
  for _ = 1 to attempts do
    let u = Rng.int rng n and v = Rng.int rng n in
    let key = (min u v, max u v) in
    if u <> v && deg.(u) < d && deg.(v) < d && not (Hashtbl.mem present key) then begin
      Hashtbl.add present key ();
      edges := key :: !edges;
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1
    end
  done;
  Graph.of_edges ~n !edges
