(* Hopcroft–Karp maximum bipartite matching, O(E sqrt(V)).

   Left vertices 0..nl-1, right vertices 0..nr-1, adjacency from the left.
   [inf] marks unreached vertices in the layered BFS. *)

let inf = max_int

type result = { size : int; pair_left : int array; pair_right : int array }

let max_matching ~nl ~nr ~adj =
  if Array.length adj <> nl then invalid_arg "Hopcroft_karp.max_matching: adjacency size mismatch";
  Array.iter (Array.iter (fun v -> if v < 0 || v >= nr then invalid_arg "Hopcroft_karp.max_matching: right vertex out of range")) adj;
  let pair_left = Array.make nl (-1) in
  let pair_right = Array.make nr (-1) in
  let dist = Array.make nl inf in
  let queue = Queue.create () in
  let bfs () =
    Queue.clear queue;
    let found = ref false in
    for u = 0 to nl - 1 do
      if pair_left.(u) = -1 then begin
        dist.(u) <- 0;
        Queue.add u queue
      end
      else dist.(u) <- inf
    done;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Array.iter
        (fun v ->
          match pair_right.(v) with
          | -1 -> found := true
          | u' ->
            if dist.(u') = inf then begin
              dist.(u') <- dist.(u) + 1;
              Queue.add u' queue
            end)
        adj.(u)
    done;
    !found
  in
  let rec dfs u =
    let row = adj.(u) in
    let rec try_from i =
      if i >= Array.length row then begin
        dist.(u) <- inf;
        false
      end
      else begin
        let v = row.(i) in
        let ok =
          match pair_right.(v) with
          | -1 -> true
          | u' -> dist.(u') = dist.(u) + 1 && dfs u'
        in
        if ok then begin
          pair_left.(u) <- v;
          pair_right.(v) <- u;
          true
        end
        else try_from (i + 1)
      end
    in
    try_from 0
  in
  let size = ref 0 in
  while bfs () do
    for u = 0 to nl - 1 do
      if pair_left.(u) = -1 && dfs u then incr size
    done
  done;
  { size = !size; pair_left; pair_right }

(* A k-matching (§2, Polygamous Hall) assigns k distinct, globally disjoint
   right-neighbours to each matched left vertex. Realised as a maximum
   matching in the graph with k copies of each left vertex. *)
let k_matching ~k ~nl ~nr ~adj =
  if k <= 0 then invalid_arg "Hopcroft_karp.k_matching: k must be positive";
  let adj' = Array.init (nl * k) (fun i -> adj.(i / k)) in
  let { size; pair_left; pair_right = _ } = max_matching ~nl:(nl * k) ~nr ~adj:adj' in
  if size < nl * k then None
  else begin
    let groups = Array.init nl (fun u -> Array.init k (fun c -> pair_left.((u * k) + c))) in
    Some groups
  end
