type t = int array list

let canonical_cycle cyc =
  let k = Array.length cyc in
  if k < 3 then invalid_arg "Cycles.canonical_cycle: length < 3";
  let min_pos = ref 0 in
  for i = 1 to k - 1 do
    if cyc.(i) < cyc.(!min_pos) then min_pos := i
  done;
  let rotated = Bcclb_util.Arrayx.rotate_left cyc !min_pos in
  (* Pick the direction that gives the lexicographically smaller sequence;
     comparing the two neighbours of the minimum is enough. *)
  if rotated.(1) <= rotated.(k - 1) then rotated
  else begin
    let r = Array.copy rotated in
    let tail = Array.sub r 1 (k - 1) in
    Bcclb_util.Arrayx.rev_in_place tail;
    Array.blit tail 0 r 1 (k - 1);
    r
  end

let make cycles =
  let canon = List.map canonical_cycle cycles in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun c ->
      Array.iter
        (fun v ->
          if Hashtbl.mem seen v then invalid_arg "Cycles.make: cycles are not disjoint";
          Hashtbl.add seen v ())
        c)
    canon;
  List.sort (fun a b -> Int.compare a.(0) b.(0)) canon

let cycles t = t

let num_cycles t = List.length t

let num_vertices t = List.fold_left (fun acc c -> acc + Array.length c) 0 t

let lengths t = List.map Array.length t

let equal (a : t) (b : t) = a = b
let compare_t (a : t) (b : t) = compare a b

let to_edges t =
  List.concat_map
    (fun c ->
      let k = Array.length c in
      List.init k (fun i -> (c.(i), c.((i + 1) mod k))))
    t

let to_graph ~n t = Graph.of_edges ~n (to_edges t)

let of_graph g =
  let n = Graph.n g in
  if not (Graph.is_regular g ~k:2) then None
  else begin
    let visited = Array.make n false in
    let cycles = ref [] in
    (try
       for start = 0 to n - 1 do
         if not visited.(start) then begin
           (* Walk the cycle from [start], never going back where we came from. *)
           let acc = ref [ start ] in
           visited.(start) <- true;
           let prev = ref start in
           let cur = ref (Graph.neighbors g start).(0) in
           while !cur <> start do
             visited.(!cur) <- true;
             acc := !cur :: !acc;
             let nbrs = Graph.neighbors g !cur in
             let next = if nbrs.(0) = !prev then nbrs.(1) else nbrs.(0) in
             prev := !cur;
             cur := next
           done;
           let cyc = Array.of_list (List.rev !acc) in
           if Array.length cyc < 3 then raise Exit;
           cycles := cyc :: !cycles
         end
       done;
       Some (make !cycles)
     with Exit -> None)
  end

let pp fmt t =
  Format.fprintf fmt "@[<hov 1>{%a}@]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt " |@ ")
       (fun fmt c ->
         Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt "-")
           Format.pp_print_int fmt (Array.to_list c)))
    t
