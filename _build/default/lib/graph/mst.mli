(** Minimum spanning forests (sequential oracle for the distributed MST
    algorithm; cf. the CC-vs-BCC MST contrast of the paper's §1). *)

val kruskal : Graph.t -> weight:(int -> int -> int) -> (int * int) list
(** Minimum spanning forest edges, (u, v) with u < v. Deterministic under
    ties (lexicographic tie-break); unique when weights are distinct. *)

val total_weight : weight:(int -> int -> int) -> (int * int) list -> int

val is_spanning_forest : Graph.t -> (int * int) list -> bool
(** Acyclic, uses only graph edges, and spans every component. *)

val weight_of_ids : max_id:int -> int -> int -> int
(** Canonical injective (hence distinct) symmetric weight on ID pairs:
    lets every vertex of a KT-1 algorithm compute any known edge's weight
    locally without shipping weights around. *)
