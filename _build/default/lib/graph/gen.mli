(** Input-graph generators for experiments and tests.

    The paper's hard instances are 2-regular: single cycles (YES) vs
    disjoint unions of ≥ 2 cycles each of length ≥ 3 (NO). All generators
    take an explicit {!Bcclb_util.Rng.t} for reproducibility. *)

val cycle : int -> Graph.t
(** The canonical n-cycle 0−1−…−(n−1)−0. @raise Invalid_argument for n < 3. *)

val cycle_of_order : int array -> Graph.t
(** Cycle visiting the vertices in the given order. *)

val random_cycle : Bcclb_util.Rng.t -> int -> Graph.t
(** Uniformly random one-cycle instance on n vertices. *)

val multicycle_of_lengths : Bcclb_util.Rng.t -> int -> int list -> Graph.t
(** Random disjoint cycles with the given lengths (each ≥ 3, summing to n).
    @raise Invalid_argument otherwise. *)

val random_two_cycles : Bcclb_util.Rng.t -> int -> Graph.t
(** A TwoCycle NO-instance: two disjoint cycles of lengths ≥ 3.
    @raise Invalid_argument for n < 6. *)

val random_multicycle : Bcclb_util.Rng.t -> int -> Graph.t
(** A MultiCycle instance (possibly a single cycle). *)

val gnp : Bcclb_util.Rng.t -> int -> float -> Graph.t
(** Erdős–Rényi G(n, p). @raise Invalid_argument for p outside [0, 1]. *)

val random_connected : Bcclb_util.Rng.t -> int -> Graph.t
(** Random spanning tree plus a few extra edges: always connected. *)

val random_forest : Bcclb_util.Rng.t -> int -> Graph.t
(** A random forest (arboricity 1, usually disconnected). *)

val random_bounded_degree : Bcclb_util.Rng.t -> int -> int -> Graph.t
(** Random graph with maximum degree at most [d]. *)
