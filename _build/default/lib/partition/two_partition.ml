(* TwoPartition inputs (§4.1): partitions of [n], n even, with every part
   of size exactly two — i.e. perfect matchings of the complete graph. *)

let is_two_partition p =
  List.for_all (fun b -> List.length b = 2) (Set_partition.blocks p)

let of_pairs ~n pairs = Set_partition.of_blocks ~n (List.map (fun (a, b) -> [ a; b ]) pairs)

let pairs p =
  if not (is_two_partition p) then invalid_arg "Two_partition.pairs: parts are not all of size two";
  List.map
    (fun b -> match b with [ a; c ] -> (a, c) | _ -> assert false)
    (Set_partition.blocks p)

let iter ~n f =
  if n <= 0 || n land 1 = 1 then invalid_arg "Two_partition.iter: n must be positive and even";
  (* Pair the smallest unused element with each other unused element. *)
  let used = Array.make n false in
  let acc = ref [] in
  let rec go remaining =
    if remaining = 0 then f (of_pairs ~n !acc)
    else begin
      let a = ref 0 in
      while used.(!a) do
        incr a
      done;
      let a = !a in
      used.(a) <- true;
      for b = a + 1 to n - 1 do
        if not used.(b) then begin
          used.(b) <- true;
          acc := (a, b) :: !acc;
          go (remaining - 2);
          acc := List.tl !acc;
          used.(b) <- false
        end
      done;
      used.(a) <- false
    end
  in
  go n

let all ~n =
  let acc = ref [] in
  iter ~n (fun p -> acc := p :: !acc);
  List.rev !acc

let count ~n =
  let c = ref 0 in
  iter ~n (fun _ -> incr c);
  !c

let random rng ~n =
  if n <= 0 || n land 1 = 1 then invalid_arg "Two_partition.random: n must be positive and even";
  let perm = Bcclb_util.Rng.permutation rng n in
  of_pairs ~n (List.init (n / 2) (fun i -> (perm.(2 * i), perm.((2 * i) + 1))))
