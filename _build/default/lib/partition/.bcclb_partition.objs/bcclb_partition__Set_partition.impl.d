lib/partition/set_partition.ml: Array Arrayx Bcclb_graph Bcclb_util Format Fun Hashtbl List Printf Rng String
