lib/partition/set_partition.mli: Bcclb_util Format
