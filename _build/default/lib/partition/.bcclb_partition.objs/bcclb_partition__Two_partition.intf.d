lib/partition/two_partition.mli: Bcclb_util Set_partition
