lib/partition/two_partition.ml: Array Bcclb_util List Set_partition
