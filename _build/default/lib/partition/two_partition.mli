(** The TwoPartition special case of §4.1: partitions of an even ground
    set with every part of size exactly two (perfect matchings). These
    index the rows/columns of the full-rank matrix Eⁿ of Lemma 4.1, and
    the reduction of §4.2 turns a pair of them into a 2-regular gadget
    graph (the MultiCycle instance). *)

val is_two_partition : Set_partition.t -> bool

val of_pairs : n:int -> (int * int) list -> Set_partition.t
(** @raise Invalid_argument unless the pairs partition [0..n−1]. *)

val pairs : Set_partition.t -> (int * int) list
(** The parts as ordered pairs (a, b), a < b.
    @raise Invalid_argument if some part has size ≠ 2. *)

val iter : n:int -> (Set_partition.t -> unit) -> unit
(** All r = n!/(2^{n/2}(n/2)!) perfect matchings, in a fixed order.
    @raise Invalid_argument on odd n. *)

val all : n:int -> Set_partition.t list

val count : n:int -> int
(** r by direct enumeration (check against
    {!Bcclb_bignum.Combi.perfect_matchings}). *)

val random : Bcclb_util.Rng.t -> n:int -> Set_partition.t
(** Uniformly random perfect matching. *)
