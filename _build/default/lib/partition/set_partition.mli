(** Set partitions of the ground set [n] = {0, …, n−1}, the combinatorial
    heart of §4: inputs of the Partition, TwoPartition, and PartitionComp
    communication problems.

    The canonical representation is the {e restricted growth string}
    (RGS): an array [a] with [a.(0) = 0] and
    [a.(i) ≤ 1 + max(a.(0..i−1))], where [a.(i)] is the block index of
    element [i]. Equal partitions have equal arrays. *)

type t

val of_rgs : int array -> t
(** Validate and copy an RGS. @raise Invalid_argument if not an RGS. *)

val to_rgs : t -> int array
(** Fresh copy of the underlying RGS. *)

val of_labels : int array -> t
(** Partition induced by arbitrary block labels (renumbered into RGS). *)

val of_blocks : n:int -> int list list -> t
(** From explicit blocks. @raise Invalid_argument unless the blocks
    partition [0..n−1] exactly. *)

val blocks : t -> int list list
(** Blocks in order of first appearance, elements ascending. *)

val ground_size : t -> int
val num_parts : t -> int

val part_of : t -> int -> int
(** Block index of an element. *)

val same_part : t -> int -> int -> bool

val finest : int -> t
(** (0)(1)…(n−1) — Bob's fixed input in the Theorem 4.5 hard distribution. *)

val coarsest : int -> t
(** The one-block partition 1; [Partition] asks whether P_A ∨ P_B equals it. *)

val is_coarsest : t -> bool
val is_finest : t -> bool

val equal : t -> t -> bool
val compare_t : t -> t -> int
val hash : t -> int

val join : t -> t -> t
(** P ∨ Q, the finest common coarsening (§1.1).
    @raise Invalid_argument on different ground sets. *)

val meet : t -> t -> t
(** P ∧ Q, the coarsest common refinement. *)

val refines : t -> t -> bool
(** [refines p q] iff every part of [p] is contained in a part of [q]. *)

val iter : n:int -> (t -> unit) -> unit
(** All Bₙ partitions in lexicographic RGS order. *)

val all : n:int -> t list

val count : n:int -> int
(** Bₙ by direct enumeration (use {!Bcclb_bignum.Combi.bell} beyond small n). *)

val rank : t -> int
(** Index in the {!iter} order; inverse of {!unrank}.
    @raise Invalid_argument for n > 20 (count overflows an int). *)

val unrank : n:int -> int -> t
(** Partition with the given index. @raise Invalid_argument out of range. *)

val random_uniform : Bcclb_util.Rng.t -> n:int -> t
(** Exactly uniform over all Bₙ partitions (n ≤ 20) — the hard
    distribution of Theorem 4.5. @raise Invalid_argument for n > 20. *)

val random_crp : Bcclb_util.Rng.t -> n:int -> t
(** Cheap non-uniform random partition (uniform RGS digits), any n; for
    stress tests where exact uniformity is irrelevant. *)

val to_string : t -> string
(** E.g. ["(0,1)(2)"] in the paper's notation. *)

val pp : Format.formatter -> t -> unit
