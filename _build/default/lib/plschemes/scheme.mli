(** Proof-labeling schemes in the broadcast congested clique (§1.3;
    [KKP10; BFP15; PP17]).

    A scheme consists of a prover that labels vertices and a distributed
    verifier: one broadcast round in which every vertex announces its
    label and then decides from its initial knowledge plus all heard
    labels. Verification complexity = label size. Patt-Shamir–Perry's
    Ω(log n) verification bound for MST, combined with the
    transcript-as-labels transformation ({!Transcript_scheme}), is the
    deterministic ancestor of the paper's Theorem 3.1. *)

type t = {
  name : string;
  label_bits : n:int -> int;  (** Verification complexity κ(n). *)
  prove : Bcclb_bcc.Instance.t -> string array option;
      (** Honest prover; [None] when the predicate fails. *)
  verify : Bcclb_bcc.View.t -> own:string -> by_port:string array -> bool;
      (** One vertex's accept/reject decision. *)
}

type result = {
  accepted : bool;  (** All vertices accepted. *)
  rejecting : int list;
}

val run : t -> Bcclb_bcc.Instance.t -> labels:string array -> result
(** Execute the verification round with the given labelling.
    @raise Invalid_argument unless there is one label per vertex. *)

val accepts : t -> Bcclb_bcc.Instance.t -> labels:string array -> bool

val soundness_check :
  ?trials:int ->
  Bcclb_util.Rng.t ->
  t ->
  Bcclb_bcc.Instance.t ->
  candidate_labels:string array list ->
  string array option
(** Adversarial probe on a predicate-violating instance: candidate
    labelings, their perturbations, and random labelings; returns a
    fooling labelling if one is found (soundness demands [None]). *)
