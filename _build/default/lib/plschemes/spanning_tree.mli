(** The BFS-tree proof-labeling scheme for Connectivity: labels
    (id, root, parent, dist), 4·⌈log₂(n+1)⌉ bits, verified in one
    broadcast round in either knowledge model. Complete and sound. *)

val scheme : Scheme.t

(**/**)

type fields = { id : int; root : int; parent : int; dist : int }

val field_width : n:int -> int
val encode : n:int -> fields -> string
val decode : n:int -> string -> fields option
