open Bcclb_bcc

(* Proof-labeling schemes in the broadcast congested clique (§1.3 of the
   paper, after [KKP10; BFP15; PP17]): a prover assigns each vertex a
   label; verification is a single broadcast round in which every vertex
   broadcasts its label and then accepts or rejects from its own initial
   knowledge plus all labels heard. The scheme verifies a predicate P
   when (completeness) on every instance satisfying P the honest prover
   makes all vertices accept, and (soundness) on every instance violating
   P, EVERY labelling leaves some vertex rejecting. The verification
   complexity is the label size. *)

type t = {
  name : string;
  label_bits : n:int -> int;
  prove : Instance.t -> string array option;
      (* Honest prover: labels per vertex, or None when the predicate
         fails (no honest proof exists). *)
  verify : View.t -> own:string -> by_port:string array -> bool;
      (* One vertex's decision from its initial knowledge, its own label,
         and the label received through each port. *)
}

type result = { accepted : bool; rejecting : int list }

let run scheme inst ~labels =
  let n = Instance.n inst in
  if Array.length labels <> n then invalid_arg "Scheme.run: one label per vertex required";
  let rejecting = ref [] in
  for v = n - 1 downto 0 do
    let view = Instance.view inst v in
    let by_port = Array.init (n - 1) (fun p -> labels.(Instance.peer inst v p)) in
    if not (scheme.verify view ~own:labels.(v) ~by_port) then rejecting := v :: !rejecting
  done;
  { accepted = !rejecting = []; rejecting = !rejecting }

let accepts scheme inst ~labels = (run scheme inst ~labels).accepted

(* Exhaustive-ish soundness check: on an instance violating the
   predicate, try the honest labelling of a nearby YES instance plus
   [trials] random perturbations and fully random labelings; all must be
   rejected. Returns the first accepted (fooling) labelling if any. *)
let soundness_check ?(trials = 200) rng scheme inst ~candidate_labels =
  let n = Instance.n inst in
  let random_label len = String.init len (fun _ -> if Bcclb_util.Rng.bool rng then '1' else '0') in
  let check labels = if accepts scheme inst ~labels then Some labels else None in
  let rec try_all i =
    if i >= trials then None
    else begin
      let labels =
        if i < List.length candidate_labels then List.nth candidate_labels i
        else begin
          let base =
            match candidate_labels with
            | [] -> Array.init n (fun _ -> random_label (scheme.label_bits ~n))
            | l :: _ -> Array.copy l
          in
          (* Perturb a few labels. *)
          for _ = 0 to Bcclb_util.Rng.int rng 3 do
            let v = Bcclb_util.Rng.int rng n in
            base.(v) <- random_label (String.length base.(v))
          done;
          base
        end
      in
      match check labels with Some l -> Some l | None -> try_all (i + 1)
    end
  in
  try_all 0
