open Bcclb_bcc
open Bcclb_graph

(* The classic O(log n)-bit connectivity scheme: the prover labels every
   vertex with (own id, root id, parent id, distance) of a BFS tree
   rooted at the minimum-ID vertex. A vertex accepts iff
     - its own label's id field is its actual ID (authenticating the id
       fields of all labels, since every vertex checks its own);
     - all labels agree on the root id r;
     - exactly one label has distance 0, with id = parent = r;
     - locally: it is that root, or some INPUT port carries a label with
       id equal to its parent field and distance exactly one less.
   Complete on connected graphs. Sound: if all vertices accept, every
   non-root vertex has a genuine input-graph neighbour one step closer
   to the unique distance-0 vertex, so a descending path connects
   everyone — impossible on a disconnected graph. Works in KT-0 and
   KT-1 alike; labels are 4L = O(log n) bits, the verification
   complexity that PP17-style lower bounds show optimal. *)

let field_width ~n = Bcclb_util.Mathx.ceil_log2 (max 2 (n + 1))

let encode_field w v = String.init w (fun i -> if (v lsr (w - 1 - i)) land 1 = 1 then '1' else '0')

let decode_field s =
  String.fold_left (fun acc c -> (acc * 2) + (if c = '1' then 1 else 0)) 0 s

type fields = { id : int; root : int; parent : int; dist : int }

let encode ~n f =
  let w = field_width ~n in
  encode_field w f.id ^ encode_field w f.root ^ encode_field w f.parent ^ encode_field w f.dist

let decode ~n s =
  let w = field_width ~n in
  if String.length s <> 4 * w then None
  else if String.exists (fun c -> c <> '0' && c <> '1') s then None
  else
    Some
      { id = decode_field (String.sub s 0 w);
        root = decode_field (String.sub s w w);
        parent = decode_field (String.sub s (2 * w) w);
        dist = decode_field (String.sub s (3 * w) w) }

(* BFS tree from the minimum-ID vertex. *)
let prove inst =
  let g = Instance.input_graph inst in
  if not (Graph.is_connected g) then None
  else begin
    let n = Graph.n g in
    let ids = Instance.ids inst in
    let root = ref 0 in
    for v = 1 to n - 1 do
      if ids.(v) < ids.(!root) then root := v
    done;
    let dist = Array.make n (-1) in
    let parent = Array.make n (-1) in
    let queue = Queue.create () in
    dist.(!root) <- 0;
    parent.(!root) <- !root;
    Queue.add !root queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      Array.iter
        (fun u ->
          if dist.(u) = -1 then begin
            dist.(u) <- dist.(v) + 1;
            parent.(u) <- v;
            Queue.add u queue
          end)
        (Graph.neighbors g v)
    done;
    let root_id = ids.(!root) in
    Some
      (Array.init n (fun v ->
           encode ~n { id = ids.(v); root = root_id; parent = ids.(parent.(v)); dist = dist.(v) }))
  end

let verify view ~own ~by_port =
  let n = View.n view in
  match decode ~n own with
  | None -> false
  | Some me ->
    let others = Array.map (decode ~n) by_port in
    if me.id <> View.id view then false
    else if Array.exists Option.is_none others then false
    else begin
      let others = Array.map Option.get others in
      (* Global checks from the heard labels. *)
      let all = me :: Array.to_list others in
      let same_root = List.for_all (fun f -> f.root = me.root) all in
      let zeros = List.filter (fun f -> f.dist = 0) all in
      let unique_root =
        match zeros with [ f ] -> f.id = me.root && f.parent = me.root | _ -> false
      in
      (* Local parent check over genuine input edges. *)
      let local =
        if me.id = me.root then me.dist = 0 && me.parent = me.root
        else
          me.dist >= 1
          && List.exists
               (fun p ->
                 let f = others.(p) in
                 f.id = me.parent && f.dist = me.dist - 1)
               (View.input_ports view)
      in
      same_root && unique_root && local
    end

let scheme =
  { Scheme.name = "spanning-tree";
    label_bits = (fun ~n -> 4 * field_width ~n);
    prove;
    verify }
