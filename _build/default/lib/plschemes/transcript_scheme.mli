(** The §1.3 transformation, executable: compile any (correct,
    deterministic) BCC(1) Connectivity algorithm into a proof-labeling
    scheme whose labels are the per-vertex broadcast transcripts and
    whose verification complexity is twice the algorithm's round count.

    This is the bridge between verification lower bounds [PP17] and
    round lower bounds: an o(log n)-round algorithm would give an
    o(log n)-bit connectivity scheme. *)

val of_algorithm : bool Bcclb_bcc.Algo.packed -> Scheme.t
(** The honest prover runs the algorithm (a proof exists only on
    YES instances); the verifier replays the algorithm locally against
    the broadcast labels. Sound whenever the compiled algorithm is
    correct. *)
