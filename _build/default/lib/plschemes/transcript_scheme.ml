open Bcclb_bcc

(* The transformation sketched in §1.3: "if there were a faster BCC(1)
   Connectivity algorithm, the prover could use the transcript of the
   algorithm at each vertex v as the label at v. The verifier could then
   broadcast these transcripts and locally, at each vertex v, simulate
   the algorithm at v."

   Labels: the r-character broadcast string of the vertex, over
   {'0','1','_'} (2 bits per character, so κ = 2r). Verification: replay
   the algorithm locally — the vertex's own broadcast in each round is
   forced by its view and the labels heard on its ports, so it checks
   its own label character by character and finally checks that the
   algorithm accepts. By induction over rounds, if every vertex accepts
   then the labels ARE the real execution's transcripts and the real
   execution answers YES everywhere; soundness therefore reduces to the
   correctness of the compiled algorithm, and completeness is immediate.
   An r-round algorithm thus yields verification complexity O(r) — which
   is how a verification lower bound transfers to a round lower bound. *)

let char_ok c = c = '0' || c = '1' || c = '_'

let msg_of_char = function
  | '0' -> Msg.zero
  | '1' -> Msg.one
  | '_' -> Msg.silent
  | _ -> invalid_arg "Transcript_scheme: bad transcript character"

let of_algorithm (Algo.Packed a) =
  let name = Printf.sprintf "transcript[%s]" a.Algo.name in
  let prove inst =
    let result = Simulator.run (Algo.pack a) inst in
    (* A proof exists only for YES (connected) instances: on NO instances
       the honest algorithm makes some vertex output NO, and there is
       nothing to certify. *)
    if Problems.system_decision result.Simulator.outputs then
      Some (Array.map Transcript.sent_string result.Simulator.transcripts)
    else None
  in
  let verify view ~own ~by_port =
    let n = View.n view in
    let rounds = a.Algo.rounds ~n in
    let lengths_ok =
      String.length own = rounds
      && String.for_all char_ok own
      && Array.for_all (fun s -> String.length s = rounds && String.for_all char_ok s) by_port
    in
    if not lengths_ok then false
    else begin
      try
        let state = ref (a.Algo.init view) in
        let consistent = ref true in
        let inbox_of r =
          (* Broadcasts of round r, per port; all-silent for r = 0. *)
          if r = 0 then Array.make (View.num_ports view) Msg.silent
          else Array.map (fun s -> msg_of_char s.[r - 1]) by_port
        in
        for r = 1 to rounds do
          let state', msg = a.Algo.step !state ~round:r ~inbox:(inbox_of (r - 1)) in
          state := state';
          if not (Msg.equal msg (msg_of_char own.[r - 1])) then consistent := false
        done;
        !consistent && a.Algo.finish !state ~inbox:(inbox_of rounds)
      with _ -> false
    end
  in
  { Scheme.name; label_bits = (fun ~n -> 2 * a.Algo.rounds ~n); prove; verify }
