lib/plschemes/transcript_scheme.mli: Bcclb_bcc Scheme
