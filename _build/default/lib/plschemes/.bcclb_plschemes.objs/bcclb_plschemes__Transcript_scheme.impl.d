lib/plschemes/transcript_scheme.ml: Algo Array Bcclb_bcc Msg Printf Problems Scheme Simulator String Transcript View
