lib/plschemes/spanning_tree.mli: Scheme
