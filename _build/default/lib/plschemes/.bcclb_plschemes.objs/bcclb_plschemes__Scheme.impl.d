lib/plschemes/scheme.ml: Array Bcclb_bcc Bcclb_util Instance List String View
