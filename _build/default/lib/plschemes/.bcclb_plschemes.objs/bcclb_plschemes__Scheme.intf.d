lib/plschemes/scheme.mli: Bcclb_bcc Bcclb_util
