lib/plschemes/spanning_tree.ml: Array Bcclb_bcc Bcclb_graph Bcclb_util Graph Instance List Option Queue Scheme String View
