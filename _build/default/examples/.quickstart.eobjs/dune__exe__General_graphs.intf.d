examples/general_graphs.mli:
