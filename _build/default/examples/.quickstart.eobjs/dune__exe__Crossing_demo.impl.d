examples/crossing_demo.ml: Bcclb_algorithms Bcclb_bcc Bcclb_graph Bcclb_util List Printf String
