examples/census_explorer.ml: Array Bcclb_algorithms Bcclb_bcc Bcclb_bignum Bcclb_core Bcclb_graph Format List Printf
