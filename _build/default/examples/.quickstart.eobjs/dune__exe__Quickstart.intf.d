examples/quickstart.mli:
