examples/census_explorer.mli:
