examples/crossing_demo.mli:
