examples/general_graphs.ml: Array Bcclb_algorithms Bcclb_bcc Bcclb_graph Bcclb_util List Printf
