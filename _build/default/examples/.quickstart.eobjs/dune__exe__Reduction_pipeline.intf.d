examples/reduction_pipeline.mli:
