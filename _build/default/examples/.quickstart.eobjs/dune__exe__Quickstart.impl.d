examples/quickstart.ml: Bcclb_algorithms Bcclb_bcc Bcclb_graph Bcclb_util Printf
