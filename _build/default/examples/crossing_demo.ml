(* The edge-crossing engine of the KT-0 lower bound (§3), demonstrated:
   a port-preserving crossing (Definition 3.3) turns one cycle into two
   while leaving every vertex's local view untouched, so an algorithm
   that has not broadcast enough cannot tell the difference (Lemma 3.4).

     dune exec examples/crossing_demo.exe
*)

module Gen = Bcclb_graph.Gen
module Graph = Bcclb_graph.Graph
module Instance = Bcclb_bcc.Instance
module Simulator = Bcclb_bcc.Simulator
module View = Bcclb_bcc.View
module Problems = Bcclb_bcc.Problems

let () =
  let n = 16 in
  let g = Gen.cycle n in
  let inst = Instance.kt0_circulant g in

  (* Cross the directed cycle edges (0,1) and (8,9): the cycle splits
     into 1..8 and 9..0 but, port by port, nobody's view changes. *)
  let crossed = Instance.cross inst (0, 1) (8, 9) in
  Printf.printf "original components : %d\n" (Graph.num_components (Instance.input_graph inst));
  Printf.printf "crossed  components : %d\n" (Graph.num_components (Instance.input_graph crossed));

  let views_equal =
    List.for_all
      (fun v ->
        String.equal
          (View.fingerprint (Instance.view inst v))
          (View.fingerprint (Instance.view crossed v)))
      (Bcclb_util.Arrayx.range 0 n)
  in
  Printf.printf "all %d views identical: %b\n" n views_equal;

  (* A truncated algorithm (too few rounds) produces identical transcripts
     on both instances and therefore the same — now wrong — answer. *)
  let truncated =
    Bcclb_algorithms.Discovery.connectivity_truncated ~knowledge:Instance.KT0 ~max_degree:2 ~rounds:3
      ~optimist:true
  in
  Printf.printf "3-round algorithm  : indistinguishable = %b (it answers %s on both)\n"
    (Simulator.indistinguishable truncated inst crossed)
    (if Problems.system_decision (Simulator.run truncated inst).Simulator.outputs then "YES" else "NO");

  (* The full O(log n)-round algorithm distinguishes them: after enough
     rounds the endpoints of the crossed edges broadcast different
     sequences, breaking Lemma 3.4's hypothesis. *)
  let full = Bcclb_algorithms.Discovery.connectivity ~knowledge:Instance.KT0 ~max_degree:2 in
  let yes = Problems.system_decision (Simulator.run full inst).Simulator.outputs in
  let no = Problems.system_decision (Simulator.run full crossed).Simulator.outputs in
  Printf.printf "full algorithm     : indistinguishable = %b, answers %s / %s\n"
    (Simulator.indistinguishable full inst crossed)
    (if yes then "YES" else "NO")
    (if no then "YES" else "NO");
  assert (views_equal && yes && not no);
  print_endline "crossing_demo: OK"
