(* Beyond the promise problems: general input graphs in the BCC model.

   The paper's lower bounds live on 2-regular instances; its introduction
   situates them against the polylog-round algorithms that exist for
   ARBITRARY graphs. This example runs that upper-bound landscape:

     - AGM linear-sketch connectivity, O(log^3 n) rounds in BCC(1);
     - the Theta(n)-round adjacency-matrix broadcast baseline;
     - Boruvka in BCC(2 log n), O(log n) rounds, and the same algorithm
       compiled down to BCC(1) by the bandwidth-splitting translation;
     - minimum spanning forest in BCC(2 log n).

     dune exec examples/general_graphs.exe
*)

module I = Bcclb_bcc.Instance
module S = Bcclb_bcc.Simulator
module P = Bcclb_bcc.Problems
module A = Bcclb_bcc.Algo
module Gen = Bcclb_graph.Gen
module Graph = Bcclb_graph.Graph
module Rng = Bcclb_util.Rng

let () =
  let n = 16 in
  let rng = Rng.create ~seed:2024 in
  let g = Gen.gnp rng n 0.15 in
  let inst = I.kt1_of_graph g in
  Printf.printf "instance: G(n=%d, p=0.15): %d edges, %d components, connected=%b\n" n
    (Graph.num_edges g) (Graph.num_components g) (Graph.is_connected g);

  let run name algo =
    let r = S.run ~seed:1 algo inst in
    let dec = P.system_decision r.S.outputs in
    Printf.printf "%-28s %6d rounds  b=%-2d  -> %s\n" name r.S.rounds_used (A.bandwidth algo ~n)
      (if dec = Graph.is_connected g then "correct" else "WRONG")
  in
  run "agm-sketch (BCC(1))" (Bcclb_algorithms.Agm_connectivity.connectivity ());
  run "adjacency-matrix (BCC(1))" (Bcclb_algorithms.Adjacency_matrix.connectivity ());
  let boruvka = Bcclb_algorithms.Boruvka.connectivity () in
  run "boruvka (BCC(2L))" boruvka;
  run "boruvka split to BCC(1)" (Bcclb_bcc.Split.compile boruvka);

  (* Minimum spanning forest, checked against Kruskal. *)
  let mst = S.run (Bcclb_algorithms.Mst_boruvka.forest ()) inst in
  let forest = mst.S.outputs.(0) in
  let weight_ids = Bcclb_graph.Mst.weight_of_ids ~max_id:n in
  let weight u v = weight_ids (u + 1) (v + 1) in
  let kruskal = List.sort compare (Bcclb_graph.Mst.kruskal g ~weight) in
  let got = List.sort compare (List.map (fun (a, b) -> (a - 1, b - 1)) forest) in
  Printf.printf "%-28s %6d rounds  b=%-2d  -> %s (%d edges, weight %d)\n" "mst-boruvka (BCC(2L))"
    mst.S.rounds_used
    (A.bandwidth (Bcclb_algorithms.Mst_boruvka.forest ()) ~n)
    (if got = kruskal then "= Kruskal" else "MISMATCH")
    (List.length got)
    (Bcclb_graph.Mst.total_weight ~weight got);

  (* The asymptotic picture the paper paints: Omega(log n) <= polylog for
     general graphs; Theta(log n) exactly for bounded degree. *)
  Printf.printf "\nround growth (connectivity, general graphs):\n";
  Printf.printf "%10s %12s %12s %14s\n" "n" "agm O(lg^3)" "adj O(n)" "boruvka-split";
  List.iter
    (fun n ->
      Printf.printf "%10d %12d %12d %14d\n" n
        (A.rounds (Bcclb_algorithms.Agm_connectivity.connectivity ()) ~n)
        (A.rounds (Bcclb_algorithms.Adjacency_matrix.connectivity ()) ~n)
        (A.rounds (Bcclb_bcc.Split.compile (Bcclb_algorithms.Boruvka.connectivity ())) ~n))
    [ 64; 1024; 16384; 262144 ];
  print_endline "general_graphs: OK"
