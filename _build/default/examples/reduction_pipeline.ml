(* The §4 reduction chain, end to end:

     TwoPartition (P_A, P_B)
       -> 2-regular MultiCycle gadget G(P_A, P_B)      (§4.2, Figure 2)
       -> 2-party simulation of a KT-1 BCC(1) algorithm (§4.3)

   with the communication measured against the rank lower bound
   (Corollary 4.2) — the Theorem 4.4 argument, executed.

     dune exec examples/reduction_pipeline.exe
*)

module Sp = Bcclb_partition.Set_partition
module Tp = Bcclb_partition.Two_partition
module Rg = Bcclb_comm.Reduction_graph
module Rng = Bcclb_util.Rng

let () =
  let n = 10 in
  let rng = Rng.create ~seed:7 in
  let pa = Tp.random rng ~n and pb = Tp.random rng ~n in
  Printf.printf "P_A       = %s\n" (Sp.to_string pa);
  Printf.printf "P_B       = %s\n" (Sp.to_string pb);
  let join = Sp.join pa pb in
  Printf.printf "P_A v P_B = %s  (coarsest: %b)\n" (Sp.to_string join) (Sp.is_coarsest join);

  (* The gadget: 2n vertices, 2-regular, a disjoint union of cycles whose
     cycle structure IS the join (Theorem 4.3). *)
  let g = Rg.two_gadget pa pb in
  Printf.printf "gadget: %d vertices, %d components, 2-regular: %b\n" (Bcclb_graph.Graph.n g)
    (Bcclb_graph.Graph.num_components g)
    (Bcclb_graph.Graph.is_regular g ~k:2);
  assert (Sp.equal (Rg.two_gadget_partition g ~n) join);

  (* Alice hosts the l-vertices, Bob the r-vertices; together they
     simulate a KT-1 BCC(1) Connectivity algorithm round by round,
     exchanging each round's broadcast characters. *)
  let algo = Bcclb_algorithms.Discovery.connectivity ~knowledge:Bcclb_bcc.Instance.KT1 ~max_degree:2 in
  let r = Bcclb_comm.Bcc_simulation.two_partition_via_bcc algo pa pb in
  Printf.printf "2-party simulation: answer=%b over %d BCC rounds, %d bits exchanged\n"
    r.Bcclb_comm.Bcc_simulation.answer r.Bcclb_comm.Bcc_simulation.bcc_rounds
    r.Bcclb_comm.Bcc_simulation.bits;
  assert (r.Bcclb_comm.Bcc_simulation.answer = Sp.is_coarsest join);

  (* The other side of the sandwich: the TwoPartition rank lower bound
     says any deterministic protocol needs log2 r(n) bits, so any KT-1
     BCC(1) algorithm needs that many / (2 * gadget size) rounds. *)
  let lb_bits = Bcclb_comm.Rank_bound.two_partition_bits ~n in
  let implied =
    Bcclb_comm.Rank_bound.kt1_round_lb ~bits_per_round:(2 * Bcclb_graph.Graph.n g) lb_bits
  in
  Printf.printf "rank LB: %.1f bits  =>  any KT-1 BCC(1) algorithm needs >= %.3f rounds here\n" lb_bits
    implied;
  print_endline "reduction_pipeline: OK"
