(* Explore the instance census and the indistinguishability graph of the
   §3 lower bound at a small, fully enumerable size.

     dune exec examples/census_explorer.exe
*)

module Core = Bcclb_core
module Cycles = Bcclb_graph.Cycles
module Nat = Bcclb_bignum.Nat
module Combi = Bcclb_bignum.Combi

let () =
  let n = 7 in
  (* V1 and V2, exhaustively. *)
  let v1 = Core.Census.one_cycles ~n and v2 = Core.Census.two_cycles ~n in
  Printf.printf "n=%d: |V1| = %d (closed form %s), |V2| = %d (closed form %s)\n" n (Array.length v1)
    (Nat.to_string (Combi.one_cycle_count n))
    (Array.length v2)
    (Nat.to_string (Combi.two_cycle_count n));
  Format.printf "a one-cycle instance : %a@." Cycles.pp v1.(0);
  Format.printf "a two-cycle instance : %a@." Cycles.pp v2.(0);

  (* The indistinguishability graph after t rounds of a truncated
     algorithm: its left degrees shrink as the algorithm talks more. *)
  List.iter
    (fun t ->
      let algo =
        Bcclb_algorithms.Discovery.connectivity_truncated ~knowledge:Bcclb_bcc.Instance.KT0
          ~max_degree:2 ~rounds:t ~optimist:true
      in
      let g = Core.Indist_graph.build algo ~n () in
      let isolated = ref 0 in
      Array.iteri (fun i _ -> if Core.Indist_graph.degree_v1 g i = 0 then incr isolated) g.Core.Indist_graph.v1;
      Printf.printf "t=%d: label (x,y)=(%S,%S), %d edges, %d isolated one-cycle instances\n" t
        g.Core.Indist_graph.x g.Core.Indist_graph.y (Core.Indist_graph.num_edges g) !isolated)
    [ 0; 1; 2; 3 ];

  (* The exact error a truncated algorithm makes under the hard
     distribution mu — the quantity Theorem 3.1 lower-bounds. *)
  List.iter
    (fun t ->
      let algo =
        Bcclb_algorithms.Discovery.connectivity_truncated ~knowledge:Bcclb_bcc.Instance.KT0
          ~max_degree:2 ~rounds:t ~optimist:true
      in
      let r = Core.Hard_distribution.exact_error algo ~n in
      Printf.printf "t=%2d: mu-error = %s (%.4f)\n" t
        (Bcclb_bignum.Ratio.to_string r.Core.Hard_distribution.error)
        (Core.Hard_distribution.error_float r))
    [ 0; 2; 4; Core.Kt0_bound.upper_bound_rounds ~n ];
  print_endline "census_explorer: OK"
