(* Quickstart: build a BCC(1) instance, run a Connectivity algorithm,
   inspect the result.

     dune exec examples/quickstart.exe
*)

module Gen = Bcclb_graph.Gen
module Instance = Bcclb_bcc.Instance
module Simulator = Bcclb_bcc.Simulator
module Problems = Bcclb_bcc.Problems
module Rng = Bcclb_util.Rng

let () =
  let n = 16 in
  let rng = Rng.create ~seed:42 in

  (* A YES instance (one cycle) and a NO instance (two disjoint cycles),
     both 2-regular: the TwoCycle promise problem of the paper's §3. *)
  let yes_graph = Gen.random_cycle rng n in
  let no_graph = Gen.random_two_cycles rng n in

  (* Wrap them as KT-0 instances: vertices know their ID and which ports
     carry input edges — nothing about who is behind each port. *)
  let yes_inst = Instance.kt0_circulant yes_graph in
  let no_inst = Instance.kt0_circulant no_graph in

  (* The O(log n)-round discovery algorithm (the paper's tightness
     witness): every vertex broadcasts its ID bit-by-bit, then its
     neighbour list; everyone reconstructs the graph locally. *)
  let algo = Bcclb_algorithms.Discovery.connectivity ~knowledge:Instance.KT0 ~max_degree:2 in
  Printf.printf "algorithm: %s, rounds(n=%d) = %d\n" (Bcclb_bcc.Algo.name algo) n
    (Bcclb_bcc.Algo.rounds algo ~n);

  let run inst =
    let result = Simulator.run algo inst in
    let decision = Problems.system_decision result.Simulator.outputs in
    (decision, Simulator.total_bits_broadcast result)
  in
  let yes_decision, yes_bits = run yes_inst in
  let no_decision, no_bits = run no_inst in
  Printf.printf "one-cycle instance : system says %s (%d bits broadcast in total)\n"
    (if yes_decision then "CONNECTED" else "DISCONNECTED")
    yes_bits;
  Printf.printf "two-cycle instance : system says %s (%d bits broadcast in total)\n"
    (if no_decision then "CONNECTED" else "DISCONNECTED")
    no_bits;

  (* The same in KT-1, where ports are labelled by neighbour IDs; one
     learning phase fewer. *)
  let kt1 = Bcclb_algorithms.Discovery.connectivity ~knowledge:Instance.KT1 ~max_degree:2 in
  let r = Simulator.run kt1 (Instance.kt1_of_graph no_graph) in
  Printf.printf "KT-1 variant       : system says %s in %d rounds\n"
    (if Problems.system_decision r.Simulator.outputs then "CONNECTED" else "DISCONNECTED")
    r.Simulator.rounds_used;

  assert (yes_decision && not no_decision);
  print_endline "quickstart: OK"
