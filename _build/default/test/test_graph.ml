open Bcclb_graph
module Rng = Bcclb_util.Rng
module Ggen = Gen

let test_union_find () =
  let uf = Union_find.create 6 in
  Alcotest.(check int) "initial components" 6 (Union_find.components uf);
  Alcotest.(check bool) "union works" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "redundant union" false (Union_find.union uf 1 0);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 1 2);
  Alcotest.(check int) "components" 3 (Union_find.components uf);
  Alcotest.(check bool) "same" true (Union_find.same uf 0 3);
  Alcotest.(check bool) "not same" false (Union_find.same uf 0 4);
  Alcotest.(check (array int)) "labels" [| 0; 0; 0; 0; 4; 5 |] (Union_find.labels uf)

let test_graph_basics () =
  let g = Graph.of_edges ~n:5 [ (0, 1); (1, 2); (1, 0); (2, 0) ] in
  Alcotest.(check int) "n" 5 (Graph.n g);
  Alcotest.(check int) "m (dedup)" 3 (Graph.num_edges g);
  Alcotest.(check int) "deg 1" 2 (Graph.degree g 1);
  Alcotest.(check int) "deg 4" 0 (Graph.degree g 4);
  Alcotest.(check int) "max degree" 2 (Graph.max_degree g);
  Alcotest.(check bool) "edge" true (Graph.mem_edge g 0 2);
  Alcotest.(check bool) "no edge" false (Graph.mem_edge g 0 3);
  Alcotest.(check (list (pair int int))) "edges" [ (0, 1); (0, 2); (1, 2) ] (Graph.edges g);
  Alcotest.(check bool) "not connected" false (Graph.is_connected g);
  Alcotest.(check int) "components" 3 (Graph.num_components g);
  Alcotest.(check (array int)) "labels" [| 0; 0; 0; 3; 4 |] (Graph.components g)

let test_graph_invalid () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.of_edges: self-loop") (fun () ->
      ignore (Graph.of_edges ~n:3 [ (1, 1) ]));
  Alcotest.check_raises "out of range" (Invalid_argument "Graph.of_edges: endpoint out of range")
    (fun () -> ignore (Graph.of_edges ~n:3 [ (0, 3) ]))

let test_cycles_canonical () =
  let c1 = Cycles.canonical_cycle [| 2; 0; 4; 3 |] in
  (* Starts at 0, direction toward the smaller neighbour of 0 (2 vs 4). *)
  Alcotest.(check (array int)) "canonical" [| 0; 2; 3; 4 |] c1;
  (* All rotations/reflections canonicalise identically. *)
  let base = [| 0; 1; 4; 2; 3 |] in
  let refl = [| 0; 3; 2; 4; 1 |] in
  Alcotest.(check (array int)) "reflection" (Cycles.canonical_cycle base) (Cycles.canonical_cycle refl);
  let rot = [| 4; 2; 3; 0; 1 |] in
  Alcotest.(check (array int)) "rotation" (Cycles.canonical_cycle base) (Cycles.canonical_cycle rot)

let test_cycles_graph_roundtrip () =
  let s = Cycles.make [ [| 0; 1; 2 |]; [| 3; 5; 4 |] ] in
  Alcotest.(check int) "num cycles" 2 (Cycles.num_cycles s);
  Alcotest.(check int) "num vertices" 6 (Cycles.num_vertices s);
  Alcotest.(check (list int)) "lengths" [ 3; 3 ] (Cycles.lengths s);
  let g = Cycles.to_graph ~n:6 s in
  Alcotest.(check bool) "2-regular" true (Graph.is_regular g ~k:2);
  match Cycles.of_graph g with
  | None -> Alcotest.fail "decomposition failed"
  | Some s' -> Alcotest.(check bool) "roundtrip" true (Cycles.equal s s')

let test_cycles_of_graph_rejects () =
  let path = Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  Alcotest.(check bool) "path is not 2-regular" true (Cycles.of_graph path = None);
  Alcotest.check_raises "short cycle" (Invalid_argument "Cycles.canonical_cycle: length < 3")
    (fun () -> ignore (Cycles.make [ [| 0; 1 |] ]));
  Alcotest.check_raises "overlap" (Invalid_argument "Cycles.make: cycles are not disjoint") (fun () ->
      ignore (Cycles.make [ [| 0; 1; 2 |]; [| 2; 3; 4 |] ]))

let test_hopcroft_karp_basic () =
  (* Perfect matching on a 3x3 bipartite graph. *)
  let adj = [| [| 0; 1 |]; [| 0 |]; [| 1; 2 |] |] in
  let r = Hopcroft_karp.max_matching ~nl:3 ~nr:3 ~adj in
  Alcotest.(check int) "perfect" 3 r.size;
  (* pair consistency *)
  Array.iteri
    (fun u v -> if v >= 0 then Alcotest.(check int) "consistent" u r.pair_right.(v))
    r.pair_left;
  (* A graph where the max matching is 2: both left vertices fight over one right. *)
  let adj = [| [| 0 |]; [| 0 |]; [| 1 |] |] in
  let r = Hopcroft_karp.max_matching ~nl:3 ~nr:2 ~adj in
  Alcotest.(check int) "size 2" 2 r.size

let test_k_matching () =
  (* Each of 2 left vertices needs 2 private right vertices out of 4. *)
  let adj = [| [| 0; 1; 2 |]; [| 1; 2; 3 |] |] in
  (match Hopcroft_karp.k_matching ~k:2 ~nl:2 ~nr:4 ~adj with
  | None -> Alcotest.fail "k-matching should exist"
  | Some groups ->
    let all = Array.concat (Array.to_list groups) in
    let sorted = Array.copy all in
    Array.sort Int.compare sorted;
    let distinct = Array.length sorted = 4 && Array.for_all (fun x -> x >= 0) sorted in
    Alcotest.(check bool) "disjoint groups" true
      (distinct && sorted.(0) <> sorted.(1) && sorted.(1) <> sorted.(2) && sorted.(2) <> sorted.(3));
    Array.iteri
      (fun u group ->
        Array.iter (fun v -> Alcotest.(check bool) "edge exists" true (Array.mem v adj.(u))) group)
      groups);
  (* Impossible: 2 left vertices, k=2, but only 3 right vertices reachable. *)
  let adj = [| [| 0; 1 |]; [| 1; 2 |] |] in
  Alcotest.(check bool) "k-matching impossible" true
    (Hopcroft_karp.k_matching ~k:2 ~nl:2 ~nr:3 ~adj = None)

let test_generators () =
  let rng = Rng.create ~seed:5 in
  let g = Gen.cycle 7 in
  Alcotest.(check bool) "cycle connected" true (Graph.is_connected g);
  Alcotest.(check bool) "cycle 2-regular" true (Graph.is_regular g ~k:2);
  let g2 = Gen.random_two_cycles rng 10 in
  Alcotest.(check int) "two cycles" 2 (Graph.num_components g2);
  Alcotest.(check bool) "two cycles 2-regular" true (Graph.is_regular g2 ~k:2);
  let g3 = Gen.random_connected rng 30 in
  Alcotest.(check bool) "random connected" true (Graph.is_connected g3);
  let g4 = Gen.random_bounded_degree rng 30 3 in
  Alcotest.(check bool) "degree bound" true (Graph.max_degree g4 <= 3);
  let g5 = Gen.multicycle_of_lengths rng 12 [ 3; 4; 5 ] in
  Alcotest.(check int) "multicycle components" 3 (Graph.num_components g5);
  Alcotest.check_raises "bad lengths" (Invalid_argument "Gen.multicycle_of_lengths: lengths must sum to n")
    (fun () -> ignore (Gen.multicycle_of_lengths rng 10 [ 3; 4 ]))

(* Brute-force maximum matching for qcheck comparison. *)
let brute_force_matching ~nl ~nr ~adj =
  let used_right = Array.make nr false in
  let rec go u =
    if u = nl then 0
    else begin
      let skip = go (u + 1) in
      let best = ref skip in
      Array.iter
        (fun v ->
          if not used_right.(v) then begin
            used_right.(v) <- true;
            best := max !best (1 + go (u + 1));
            used_right.(v) <- false
          end)
        adj.(u);
      !best
    end
  in
  go 0

let suites =
  [ Alcotest.test_case "union find" `Quick test_union_find;
    Alcotest.test_case "graph basics" `Quick test_graph_basics;
    Alcotest.test_case "graph invalid" `Quick test_graph_invalid;
    Alcotest.test_case "cycles canonical" `Quick test_cycles_canonical;
    Alcotest.test_case "cycles roundtrip" `Quick test_cycles_graph_roundtrip;
    Alcotest.test_case "cycles rejects" `Quick test_cycles_of_graph_rejects;
    Alcotest.test_case "hopcroft-karp basic" `Quick test_hopcroft_karp_basic;
    Alcotest.test_case "k-matching" `Quick test_k_matching;
    Alcotest.test_case "generators" `Quick test_generators ]

let qsuites =
  let open QCheck2 in
  [ Test.make ~name:"components match union-find transitivity" ~count:200
      Gen.(pair (3 -- 15) (0 -- 100))
      (fun (n, seed) ->
        let rng = Rng.create ~seed in
        let g = Ggen.gnp rng n 0.3 in
        let labels = Graph.components g in
        List.for_all (fun (u, v) -> labels.(u) = labels.(v)) (Graph.edges g));
    Test.make ~name:"random cycle decomposes to one cycle" ~count:200
      Gen.(pair (3 -- 20) (0 -- 1000))
      (fun (n, seed) ->
        let rng = Rng.create ~seed in
        let g = Ggen.random_cycle rng n in
        match Cycles.of_graph g with Some s -> Cycles.num_cycles s = 1 | None -> false);
    Test.make ~name:"canonical cycle invariant under rotation" ~count:300
      Gen.(pair (3 -- 12) (0 -- 1000))
      (fun (n, seed) ->
        let rng = Rng.create ~seed in
        let perm = Rng.permutation rng n in
        let k = Rng.int rng n in
        let rotated = Bcclb_util.Arrayx.rotate_left perm k in
        Cycles.canonical_cycle perm = Cycles.canonical_cycle rotated);
    Test.make ~name:"canonical cycle invariant under reflection" ~count:300
      Gen.(pair (3 -- 12) (0 -- 1000))
      (fun (n, seed) ->
        let rng = Rng.create ~seed in
        let perm = Rng.permutation rng n in
        let refl = Array.copy perm in
        Bcclb_util.Arrayx.rev_in_place refl;
        Cycles.canonical_cycle perm = Cycles.canonical_cycle refl);
    Test.make ~name:"hopcroft-karp optimal vs brute force" ~count:100
      Gen.(pair (pair (1 -- 6) (1 -- 6)) (0 -- 10000))
      (fun ((nl, nr), seed) ->
        let rng = Rng.create ~seed in
        let adj =
          Array.init nl (fun _ ->
              let row = List.filter (fun _ -> Rng.bool rng) (Bcclb_util.Arrayx.range 0 nr) in
              Array.of_list row)
        in
        let hk = Hopcroft_karp.max_matching ~nl ~nr ~adj in
        hk.size = brute_force_matching ~nl ~nr ~adj) ]
