open Bcclb_bignum

let nat = Alcotest.testable Nat.pp Nat.equal
let zint = Alcotest.testable Zint.pp Zint.equal
let ratio = Alcotest.testable Ratio.pp Ratio.equal

let n = Nat.of_int
let z = Zint.of_int

let test_nat_basics () =
  Alcotest.check nat "0+0" Nat.zero (Nat.add Nat.zero Nat.zero);
  Alcotest.check nat "1+1" Nat.two (Nat.add Nat.one Nat.one);
  Alcotest.(check (option int)) "roundtrip" (Some 123456789) (Nat.to_int_opt (n 123456789));
  Alcotest.(check string) "to_string" "123456789" (Nat.to_string (n 123456789));
  Alcotest.check nat "of_string" (n 987654321) (Nat.of_string "987_654_321");
  Alcotest.(check int) "compare" (-1) (Nat.compare (n 5) (n 6));
  Alcotest.(check int) "num_bits 0" 0 (Nat.num_bits Nat.zero);
  Alcotest.(check int) "num_bits 1" 1 (Nat.num_bits Nat.one);
  Alcotest.(check int) "num_bits 255" 8 (Nat.num_bits (n 255));
  Alcotest.(check int) "num_bits 256" 9 (Nat.num_bits (n 256))

let test_nat_large () =
  let a = Nat.pow Nat.two 200 in
  let b = Nat.shift_left Nat.one 200 in
  Alcotest.check nat "2^200" a b;
  Alcotest.(check string) "2^200 decimal"
    "1606938044258990275541962092341162602522202993782792835301376" (Nat.to_string a);
  Alcotest.check nat "shift roundtrip" a (Nat.shift_right (Nat.shift_left a 37) 37);
  Alcotest.check nat "sub/add" a (Nat.add (Nat.sub a Nat.one) Nat.one)

let test_nat_divmod () =
  let a = Nat.of_string "123456789012345678901234567890" in
  let b = Nat.of_string "9876543210987654321" in
  let q, r = Nat.divmod a b in
  Alcotest.check nat "reconstruct" a (Nat.add (Nat.mul q b) r);
  Alcotest.(check bool) "r < b" true (Nat.compare r b < 0);
  Alcotest.(check string) "q" "12499999886" (Nat.to_string q);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () -> ignore (Nat.divmod a Nat.zero))

let test_nat_gcd () =
  Alcotest.check nat "gcd" (n 6) (Nat.gcd (n 54) (n 24));
  Alcotest.check nat "gcd 0" (n 7) (Nat.gcd (n 7) Nat.zero);
  let big = Nat.mul (Nat.pow (n 10) 30) (n 12) in
  let big2 = Nat.mul (Nat.pow (n 10) 30) (n 18) in
  Alcotest.check nat "big gcd" (Nat.mul (Nat.pow (n 10) 30) (n 6)) (Nat.gcd big big2)

let test_nat_log2 () =
  Alcotest.(check bool) "log2 8" true (Bcclb_util.Mathx.float_eq (Nat.log2 (n 8)) 3.0);
  let x = Nat.pow Nat.two 1000 in
  Alcotest.(check bool) "log2 2^1000" true (Bcclb_util.Mathx.float_eq (Nat.log2 x) 1000.0)

let test_zint () =
  Alcotest.check zint "add signs" (z (-3)) (Zint.add (z 4) (z (-7)));
  Alcotest.check zint "mul signs" (z (-12)) (Zint.mul (z 4) (z (-3)));
  Alcotest.check zint "neg" (z 5) (Zint.neg (z (-5)));
  Alcotest.(check int) "sign" (-1) (Zint.sign (z (-5)));
  Alcotest.(check int) "sign zero" 0 (Zint.sign Zint.zero);
  let q, r = Zint.divmod (z (-7)) (z 2) in
  Alcotest.check zint "q" (z (-3)) q;
  Alcotest.check zint "r" (z (-1)) r;
  Alcotest.check zint "divexact" (z (-4)) (Zint.divexact (z 12) (z (-3)));
  Alcotest.check_raises "divexact inexact" (Invalid_argument "Zint.divexact: division is not exact")
    (fun () -> ignore (Zint.divexact (z 7) (z 2)));
  Alcotest.check zint "of_string neg" (z (-42)) (Zint.of_string "-42")

let test_ratio () =
  let half = Ratio.of_ints 1 2 in
  let third = Ratio.of_ints 1 3 in
  Alcotest.check ratio "normalisation" half (Ratio.of_ints 3 6);
  Alcotest.check ratio "neg den normalised" (Ratio.of_ints (-1) 2) (Ratio.of_ints 1 (-2));
  Alcotest.check ratio "add" (Ratio.of_ints 5 6) (Ratio.add half third);
  Alcotest.check ratio "sub" (Ratio.of_ints 1 6) (Ratio.sub half third);
  Alcotest.check ratio "mul" (Ratio.of_ints 1 6) (Ratio.mul half third);
  Alcotest.check ratio "div" (Ratio.of_ints 3 2) (Ratio.div half third);
  Alcotest.(check int) "compare" 1 (Ratio.compare half third);
  Alcotest.check_raises "inv zero" Division_by_zero (fun () -> ignore (Ratio.inv Ratio.zero))

let test_bell () =
  (* OEIS A000110. *)
  let expected = [| 1; 1; 2; 5; 15; 52; 203; 877; 4140; 21147; 115975 |] in
  let bells = Combi.bell_numbers 10 in
  Array.iteri (fun i b -> Alcotest.check nat (Printf.sprintf "B_%d" i) (n b) bells.(i)) expected;
  Alcotest.(check string) "B_30" "846749014511809332450147" (Nat.to_string (Combi.bell 30))

let test_stirling () =
  let row = Combi.stirling2_row 5 in
  let expected = [| 0; 1; 15; 25; 10; 1 |] in
  Array.iteri (fun i s -> Alcotest.check nat (Printf.sprintf "S(5,%d)" i) (n s) row.(i)) expected;
  let sum = Array.fold_left Nat.add Nat.zero row in
  Alcotest.check nat "sum = B_5" (n 52) sum

let test_perfect_matchings () =
  Alcotest.check nat "r(2)" Nat.one (Combi.perfect_matchings 2);
  Alcotest.check nat "r(4)" (n 3) (Combi.perfect_matchings 4);
  Alcotest.check nat "r(6)" (n 15) (Combi.perfect_matchings 6);
  Alcotest.check nat "r(8)" (n 105) (Combi.perfect_matchings 8);
  Alcotest.check nat "r(10)" (n 945) (Combi.perfect_matchings 10);
  Alcotest.check_raises "odd n"
    (Invalid_argument "Combi.perfect_matchings: n must be even and non-negative") (fun () ->
      ignore (Combi.perfect_matchings 7))

let test_cycle_counts () =
  Alcotest.check nat "cycles on 3" Nat.one (Combi.cycles_on 3);
  Alcotest.check nat "cycles on 4" (n 3) (Combi.cycles_on 4);
  Alcotest.check nat "cycles on 5" (n 12) (Combi.cycles_on 5);
  Alcotest.check nat "|V1| n=6" (n 60) (Combi.one_cycle_count 6);
  Alcotest.check nat "|V2| n=6" (n 10) (Combi.two_cycle_count 6);
  Alcotest.check nat "|V2| n=7" (n 105) (Combi.two_cycle_count 7);
  Alcotest.check nat "|V2| n=8" (n 987) (Combi.two_cycle_count 8);
  Alcotest.check nat "|V2| n=5" Nat.zero (Combi.two_cycle_count 5)

let suites =
  [ Alcotest.test_case "nat basics" `Quick test_nat_basics;
    Alcotest.test_case "nat large" `Quick test_nat_large;
    Alcotest.test_case "nat divmod" `Quick test_nat_divmod;
    Alcotest.test_case "nat gcd" `Quick test_nat_gcd;
    Alcotest.test_case "nat log2" `Quick test_nat_log2;
    Alcotest.test_case "zint" `Quick test_zint;
    Alcotest.test_case "ratio" `Quick test_ratio;
    Alcotest.test_case "bell numbers" `Quick test_bell;
    Alcotest.test_case "stirling row" `Quick test_stirling;
    Alcotest.test_case "perfect matchings" `Quick test_perfect_matchings;
    Alcotest.test_case "cycle counts" `Quick test_cycle_counts ]

let qsuites =
  let open QCheck2 in
  let small = Gen.(0 -- 1_000_000_000) in
  [ Test.make ~name:"nat add against int" ~count:1000 (Gen.pair small small) (fun (a, b) ->
        Nat.to_int_opt (Nat.add (n a) (n b)) = Some (a + b));
    Test.make ~name:"nat mul against int" ~count:1000
      Gen.(pair (0 -- 1_000_000) (0 -- 1_000_000))
      (fun (a, b) -> Nat.to_int_opt (Nat.mul (n a) (n b)) = Some (a * b));
    Test.make ~name:"nat divmod against int" ~count:1000
      Gen.(pair small (1 -- 1_000_000))
      (fun (a, b) ->
        let q, r = Nat.divmod (n a) (n b) in
        Nat.to_int_opt q = Some (a / b) && Nat.to_int_opt r = Some (a mod b));
    Test.make ~name:"nat string roundtrip" ~count:300
      Gen.(list_size (1 -- 6) small)
      (fun parts ->
        let s = String.concat "" (List.map string_of_int parts) in
        let canonical = Nat.to_string (Nat.of_string s) in
        Nat.equal (Nat.of_string canonical) (Nat.of_string s));
    Test.make ~name:"nat mul distributes" ~count:300
      Gen.(triple small small small)
      (fun (a, b, c) ->
        let a = n a and b = n b and c = n c in
        Nat.equal (Nat.mul a (Nat.add b c)) (Nat.add (Nat.mul a b) (Nat.mul a c)));
    Test.make ~name:"nat divmod reconstruct (big)" ~count:200
      Gen.(pair (pair small small) (pair small (1 -- 1000)))
      (fun ((a1, a2), (b1, b2)) ->
        let a = Nat.add (Nat.mul (n a1) (n 1_000_000_000)) (n a2) in
        let b = Nat.add (Nat.mul (n b1) (n b2)) Nat.one in
        let q, r = Nat.divmod a b in
        Nat.equal a (Nat.add (Nat.mul q b) r) && Nat.compare r b < 0);
    Test.make ~name:"nat divmod with multi-limb divisors" ~count:100
      Gen.(pair (list_size (4 -- 8) (0 -- 999_999_999)) (list_size (2 -- 4) (0 -- 999_999_999)))
      (fun (as_, bs) ->
        (* Build operands of 4-8 and 2-4 decimal blocks: well beyond one
           2^26 limb, forcing the general binary long-division path. *)
        let big parts =
          List.fold_left
            (fun acc p -> Nat.add (Nat.mul acc (n 1_000_000_000)) (n p))
            Nat.zero parts
        in
        let a = big as_ and b = Nat.add (big bs) Nat.one in
        let q, r = Nat.divmod a b in
        Nat.equal a (Nat.add (Nat.mul q b) r) && Nat.compare r b < 0);
    Test.make ~name:"nat shift by arbitrary amounts" ~count:300
      Gen.(pair (0 -- 1_000_000_000) (0 -- 200))
      (fun (v, k) ->
        let x = n v in
        Nat.equal (Nat.shift_right (Nat.shift_left x k) k) x
        && Nat.equal (Nat.shift_left x k) (Nat.mul x (Nat.pow Nat.two k)));
    Test.make ~name:"nat gcd divides both" ~count:200
      Gen.(pair (1 -- 1_000_000_000) (1 -- 1_000_000_000))
      (fun (a, b) ->
        let g = Nat.gcd (n a) (n b) in
        Nat.is_zero (Nat.rem (n a) g) && Nat.is_zero (Nat.rem (n b) g));
    Test.make ~name:"zint ring laws" ~count:500
      Gen.(triple (-10000 -- 10000) (-10000 -- 10000) (-10000 -- 10000))
      (fun (a, b, c) ->
        let a = z a and b = z b and c = z c in
        Zint.equal (Zint.add a b) (Zint.add b a)
        && Zint.equal (Zint.mul a (Zint.add b c)) (Zint.add (Zint.mul a b) (Zint.mul a c))
        && Zint.equal (Zint.sub a a) Zint.zero);
    Test.make ~name:"zint divmod matches ocaml" ~count:1000
      Gen.(pair (-100000 -- 100000) (oneof [ -1000 -- -1; 1 -- 1000 ]))
      (fun (a, b) ->
        let q, r = Zint.divmod (z a) (z b) in
        Zint.to_int_opt q = Some (a / b) && Zint.to_int_opt r = Some (a mod b));
    Test.make ~name:"ratio field laws" ~count:500
      Gen.(pair (pair (-100 -- 100) (1 -- 50)) (pair (-100 -- 100) (1 -- 50)))
      (fun ((an, ad), (bn, bd)) ->
        let a = Ratio.of_ints an ad and b = Ratio.of_ints bn bd in
        Ratio.equal (Ratio.add a b) (Ratio.add b a)
        && Ratio.equal (Ratio.sub (Ratio.add a b) b) a
        && (Ratio.is_zero b || Ratio.equal (Ratio.mul (Ratio.div a b) b) a)) ]
