open Bcclb_rcc
module Instance = Bcclb_bcc.Instance
module Msg = Bcclb_bcc.Msg
module Ggen = Bcclb_graph.Gen
module Rng = Bcclb_util.Rng

let kt1 n = Instance.kt1_of_graph (Ggen.cycle n)

let test_token_routing_all_ranges () =
  let n = 12 in
  let inst = kt1 n in
  List.iter
    (fun r ->
      let algo = Token_routing.algo ~r () in
      let result = Rcc_simulator.run algo inst in
      Alcotest.(check bool)
        (Printf.sprintf "all tokens delivered r=%d" r)
        true
        (Array.for_all Fun.id result.Rcc_simulator.outputs);
      Alcotest.(check int)
        (Printf.sprintf "rounds r=%d" r)
        (Token_routing.rounds_needed ~n ~r)
        result.Rcc_simulator.rounds_used;
      Alcotest.(check bool) "range respected" true (result.Rcc_simulator.max_distinct <= r))
    [ 1; 2; 3; 5; 11 ]

let test_spectrum_endpoints () =
  let n = 16 in
  (* r = n-1: the CC end, one round; r = 1: the BCC end, n-1 rounds. *)
  Alcotest.(check int) "CC end" 1 (Token_routing.rounds_needed ~n ~r:(n - 1));
  Alcotest.(check int) "BCC end" (n - 1) (Token_routing.rounds_needed ~n ~r:1);
  (* Monotone interpolation. *)
  let rec mono r =
    r >= n - 1
    || Token_routing.rounds_needed ~n ~r >= Token_routing.rounds_needed ~n ~r:(r + 1) && mono (r + 1)
  in
  Alcotest.(check bool) "monotone in r" true (mono 1)

let test_range_enforced () =
  (* A cheating algorithm sending r+1 distinct messages must be rejected. *)
  let cheat =
    Rcc_algo.pack
      { Rcc_algo.name = "cheat";
        bandwidth = (fun ~n:_ -> 8);
        range = (fun ~n:_ -> 2);
        rounds = (fun ~n:_ -> 1);
        init = (fun view -> view);
        step =
          (fun view ~round:_ ~inbox:_ ->
            (view, Array.init (Bcclb_bcc.View.num_ports view) (fun p -> Msg.of_int ~width:8 p)));
        finish = (fun _ ~inbox:_ -> true) }
  in
  Alcotest.(check bool) "range violation raises" true
    (try
       ignore (Rcc_simulator.run cheat (kt1 8));
       false
     with Invalid_argument _ -> true)

let test_of_broadcast () =
  (* A BCC algorithm embedded as range-1 must behave identically. *)
  let algo = Bcclb_algorithms.Discovery.connectivity ~knowledge:Instance.KT1 ~max_degree:2 in
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 5 do
    let g = Ggen.random_multicycle rng 10 in
    let inst = Instance.kt1_of_graph g in
    let direct = Bcclb_bcc.Simulator.run algo inst in
    let embedded = Rcc_simulator.run (Rcc_algo.of_broadcast algo) inst in
    Alcotest.(check (array bool)) "same outputs" direct.Bcclb_bcc.Simulator.outputs
      embedded.Rcc_simulator.outputs;
    Alcotest.(check bool) "range 1 respected" true (embedded.Rcc_simulator.max_distinct <= 1)
  done

let test_distinct_messages () =
  let m w v = Msg.of_int ~width:w v in
  Alcotest.(check int) "empty" 0 (Rcc_algo.distinct_messages [||]);
  Alcotest.(check int) "silence free" 0 (Rcc_algo.distinct_messages [| Msg.silent; Msg.silent |]);
  Alcotest.(check int) "dedup" 2 (Rcc_algo.distinct_messages [| m 3 1; m 3 1; m 3 2; Msg.silent |]);
  (* Same value, different width: distinct. *)
  Alcotest.(check int) "width matters" 2 (Rcc_algo.distinct_messages [| m 3 1; m 4 1 |])

let suites =
  [ Alcotest.test_case "token routing across ranges" `Quick test_token_routing_all_ranges;
    Alcotest.test_case "spectrum endpoints" `Quick test_spectrum_endpoints;
    Alcotest.test_case "range enforced" `Quick test_range_enforced;
    Alcotest.test_case "broadcast embedding" `Quick test_of_broadcast;
    Alcotest.test_case "distinct message counting" `Quick test_distinct_messages ]

let qsuites =
  let open QCheck2 in
  [ Test.make ~name:"token routing succeeds for every (n, r)" ~count:60
      Gen.(pair (4 -- 20) (0 -- 1000))
      (fun (n, seed) ->
        let rng = Rng.create ~seed in
        let r = 1 + Rng.int rng (n - 1) in
        let inst = Instance.kt1_of_graph (Ggen.random_cycle rng n) in
        let result = Rcc_simulator.run (Token_routing.algo ~r ()) inst in
        Array.for_all Fun.id result.Rcc_simulator.outputs
        && result.Rcc_simulator.rounds_used = Token_routing.rounds_needed ~n ~r) ]
