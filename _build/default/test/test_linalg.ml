open Bcclb_linalg
open Bcclb_bignum
module Rng = Bcclb_util.Rng

let zmod = Zmod.create ()

let test_zmod_arith () =
  let p = Zmod.prime zmod in
  Alcotest.(check int) "normalize neg" (p - 1) (Zmod.normalize zmod (-1));
  Alcotest.(check int) "add wrap" 0 (Zmod.add zmod (p - 1) 1);
  Alcotest.(check int) "inv" 1 (Zmod.mul zmod 12345 (Zmod.inv zmod 12345));
  Alcotest.(check int) "pow fermat" 1 (Zmod.pow zmod 2 (p - 1));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () -> ignore (Zmod.inv zmod 0));
  Alcotest.(check bool) "31-bit prime is prime" true (Zmod.is_probable_prime 2147483647);
  Alcotest.(check bool) "9 not prime" false (Zmod.is_probable_prime 9)

let test_zmod_rank () =
  Alcotest.(check int) "identity" 3 (Zmod.rank zmod [| [| 1; 0; 0 |]; [| 0; 1; 0 |]; [| 0; 0; 1 |] |]);
  Alcotest.(check int) "dependent rows" 2
    (Zmod.rank zmod [| [| 1; 2; 3 |]; [| 2; 4; 6 |]; [| 1; 0; 1 |] |]);
  Alcotest.(check int) "zero matrix" 0 (Zmod.rank zmod [| [| 0; 0 |]; [| 0; 0 |] |]);
  Alcotest.(check int) "wide" 2 (Zmod.rank zmod [| [| 1; 0; 5; 7 |]; [| 0; 1; 2; 3 |] |]);
  Alcotest.(check int) "empty" 0 (Zmod.rank zmod [||])

let test_bareiss_rank () =
  Alcotest.(check int) "identity" 3 (Bareiss.rank_int [| [| 1; 0; 0 |]; [| 0; 1; 0 |]; [| 0; 0; 1 |] |]);
  Alcotest.(check int) "dependent" 2 (Bareiss.rank_int [| [| 1; 2; 3 |]; [| 2; 4; 6 |]; [| 1; 0; 1 |] |]);
  Alcotest.(check int) "rank 1" 1 (Bareiss.rank_int [| [| 2; 4 |]; [| 3; 6 |] |])

let zint = Alcotest.testable Zint.pp Zint.equal

let test_bareiss_det () =
  Alcotest.check zint "det 2x2" (Zint.of_int (-2)) (Bareiss.det_int [| [| 1; 2 |]; [| 3; 4 |] |]);
  Alcotest.check zint "det singular" Zint.zero (Bareiss.det_int [| [| 1; 2 |]; [| 2; 4 |] |]);
  Alcotest.check zint "det needs swap" (Zint.of_int (-1)) (Bareiss.det_int [| [| 0; 1 |]; [| 1; 0 |] |]);
  (* Vandermonde on 2,3,5: det = (3-2)(5-2)(5-3) = 6. *)
  Alcotest.check zint "vandermonde" (Zint.of_int 6)
    (Bareiss.det_int [| [| 1; 2; 4 |]; [| 1; 3; 9 |]; [| 1; 5; 25 |] |])

let test_partition_matrix_small () =
  (* n=2: partitions (0)(1) and (0,1). Join with (0,1) is always 1;
     (0)(1) v (0)(1) = (0)(1) != 1. M^2 = [[0,1],[1,1]], rank 2 = B_2. *)
  let m = Partition_matrix.m_matrix ~n:2 in
  Alcotest.(check int) "M^2 size" 2 (Array.length m);
  Alcotest.(check int) "rank M^2" 2 (Zmod.rank zmod m);
  let m3 = Partition_matrix.m_matrix ~n:3 in
  Alcotest.(check int) "M^3 size" 5 (Array.length m3);
  Alcotest.(check int) "rank M^3 = B_3" 5 (Zmod.rank zmod m3);
  Alcotest.(check int) "bareiss agrees" 5 (Bareiss.rank_int m3)

let test_theorem_2_3 () =
  (* rank(M^n) = B_n for n = 1..5 both mod p and exactly. *)
  List.iter
    (fun (n, bell) ->
      let m = Partition_matrix.m_matrix ~n in
      Alcotest.(check int) (Printf.sprintf "dim M^%d" n) bell (Array.length m);
      Alcotest.(check int) (Printf.sprintf "rank M^%d mod p" n) bell (Zmod.rank zmod m);
      if n <= 4 then Alcotest.(check int) (Printf.sprintf "rank M^%d exact" n) bell (Bareiss.rank_int m))
    [ (1, 1); (2, 2); (3, 5); (4, 15); (5, 52) ]

let test_lemma_4_1 () =
  (* rank(E^n) = r = n!/(2^{n/2} (n/2)!) for n = 2, 4, 6, 8. *)
  List.iter
    (fun (n, r) ->
      let e = Partition_matrix.e_matrix ~n in
      Alcotest.(check int) (Printf.sprintf "dim E^%d" n) r (Array.length e);
      Alcotest.(check int) (Printf.sprintf "rank E^%d mod p" n) r (Zmod.rank zmod e);
      if n <= 6 then Alcotest.(check int) (Printf.sprintf "rank E^%d exact" n) r (Bareiss.rank_int e))
    [ (2, 1); (4, 3); (6, 15); (8, 105) ]

let suites =
  [ Alcotest.test_case "zmod arithmetic" `Quick test_zmod_arith;
    Alcotest.test_case "zmod rank" `Quick test_zmod_rank;
    Alcotest.test_case "bareiss rank" `Quick test_bareiss_rank;
    Alcotest.test_case "bareiss det" `Quick test_bareiss_det;
    Alcotest.test_case "partition matrix small" `Quick test_partition_matrix_small;
    Alcotest.test_case "Theorem 2.3: rank(M^n)=B_n" `Slow test_theorem_2_3;
    Alcotest.test_case "Lemma 4.1: rank(E^n)=r" `Slow test_lemma_4_1 ]

let qsuites =
  let open QCheck2 in
  let gen_matrix =
    Gen.(
      pair (pair (1 -- 6) (1 -- 6)) (0 -- 1_000_000) >|= fun ((rows, cols), seed) ->
      let rng = Rng.create ~seed in
      Array.init rows (fun _ -> Array.init cols (fun _ -> Rng.int_in_range rng ~lo:(-5) ~hi:5)))
  in
  [ Test.make ~name:"bareiss rank = zmod rank (random small)" ~count:300 gen_matrix (fun m ->
        Bareiss.rank_int m = Zmod.rank zmod m);
    Test.make ~name:"rank bounded by dims" ~count:300 gen_matrix (fun m ->
        let r = Zmod.rank zmod m in
        r <= Array.length m && (Array.length m = 0 || r <= Array.length m.(0)));
    Test.make ~name:"det zero iff rank deficient" ~count:200
      Gen.(pair (1 -- 5) (0 -- 1_000_000))
      (fun (n, seed) ->
        let rng = Rng.create ~seed in
        let m = Array.init n (fun _ -> Array.init n (fun _ -> Rng.int_in_range rng ~lo:(-3) ~hi:3)) in
        let d = Bareiss.det_int m in
        Zint.is_zero d = (Bareiss.rank_int m < n));
    Test.make ~name:"duplicating a row preserves rank" ~count:200 gen_matrix (fun m ->
        let m' = Array.append m [| Array.copy m.(0) |] in
        Bareiss.rank_int m' = Bareiss.rank_int m) ]
