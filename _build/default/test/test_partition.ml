open Bcclb_partition
module Sp = Set_partition
module Rng = Bcclb_util.Rng

let sp = Alcotest.testable Sp.pp Sp.equal

let p_of blocks n = Sp.of_blocks ~n blocks

let test_construction () =
  let p = p_of [ [ 0; 1 ]; [ 2; 3 ]; [ 4 ] ] 5 in
  Alcotest.(check int) "parts" 3 (Sp.num_parts p);
  Alcotest.(check int) "ground" 5 (Sp.ground_size p);
  Alcotest.(check bool) "same part" true (Sp.same_part p 0 1);
  Alcotest.(check bool) "diff part" false (Sp.same_part p 1 2);
  Alcotest.(check string) "to_string" "(0,1)(2,3)(4)" (Sp.to_string p);
  (* Block order in input should not matter. *)
  Alcotest.check sp "order-insensitive" p (p_of [ [ 4 ]; [ 3; 2 ]; [ 1; 0 ] ] 5)

let test_construction_invalid () =
  Alcotest.check_raises "missing element" (Invalid_argument "Set_partition.of_blocks: element 2 missing")
    (fun () -> ignore (p_of [ [ 0; 1 ] ] 3));
  Alcotest.check_raises "repeated" (Invalid_argument "Set_partition.of_blocks: element repeated")
    (fun () -> ignore (p_of [ [ 0; 1 ]; [ 1; 2 ] ] 3));
  Alcotest.check_raises "bad rgs" (Invalid_argument "Set_partition: not a restricted growth string")
    (fun () -> ignore (Sp.of_rgs [| 0; 2 |]))

let test_join_paper_example () =
  (* From §1.1: P_A = (1,2)(3,4)(5), P_B = (1,2,4)(3)(5), P_C = (1,2,4)(3,5)
     (relabelled to 0-based). P_A ∨ P_B = (1,2,3,4)(5); P_A ∨ P_C = 1. *)
  let pa = p_of [ [ 0; 1 ]; [ 2; 3 ]; [ 4 ] ] 5 in
  let pb = p_of [ [ 0; 1; 3 ]; [ 2 ]; [ 4 ] ] 5 in
  let pc = p_of [ [ 0; 1; 3 ]; [ 2; 4 ] ] 5 in
  Alcotest.check sp "PA v PB" (p_of [ [ 0; 1; 2; 3 ]; [ 4 ] ] 5) (Sp.join pa pb);
  Alcotest.check sp "PA v PC" (Sp.coarsest 5) (Sp.join pa pc);
  Alcotest.(check bool) "PA v PB not 1" false (Sp.is_coarsest (Sp.join pa pb));
  Alcotest.(check bool) "PA v PC = 1" true (Sp.is_coarsest (Sp.join pa pc))

let test_refinement_paper_example () =
  (* (1,2)(3,4)(5) is a refinement of (1,2)(3,4,5). *)
  let fine = p_of [ [ 0; 1 ]; [ 2; 3 ]; [ 4 ] ] 5 in
  let coarse = p_of [ [ 0; 1 ]; [ 2; 3; 4 ] ] 5 in
  Alcotest.(check bool) "refines" true (Sp.refines fine coarse);
  Alcotest.(check bool) "not refines" false (Sp.refines coarse fine);
  Alcotest.(check bool) "refines self" true (Sp.refines fine fine);
  Alcotest.(check bool) "finest refines all" true (Sp.refines (Sp.finest 5) coarse);
  Alcotest.(check bool) "all refine coarsest" true (Sp.refines coarse (Sp.coarsest 5))

let test_enumeration_counts () =
  (* Bell numbers. *)
  List.iter
    (fun (n, b) -> Alcotest.(check int) (Printf.sprintf "B_%d" n) b (Sp.count ~n))
    [ (1, 1); (2, 2); (3, 5); (4, 15); (5, 52); (6, 203); (7, 877) ]

let test_enumeration_distinct () =
  let seen = Hashtbl.create 1000 in
  Sp.iter ~n:6 (fun p ->
      Alcotest.(check bool) "no duplicates" false (Hashtbl.mem seen (Sp.to_rgs p));
      Hashtbl.add seen (Sp.to_rgs p) ());
  Alcotest.(check int) "all distinct" 203 (Hashtbl.length seen)

let test_rank_unrank () =
  let all = Array.of_list (Sp.all ~n:6) in
  Array.iteri
    (fun i p ->
      Alcotest.(check int) "rank matches iter order" i (Sp.rank p);
      Alcotest.check sp "unrank inverse" p (Sp.unrank ~n:6 i))
    all;
  Alcotest.check_raises "rank out of range" (Invalid_argument "Set_partition.unrank: rank out of range")
    (fun () -> ignore (Sp.unrank ~n:6 203))

let test_random_uniform_covers () =
  (* With 5000 draws over B_4 = 15 partitions, every cell must appear. *)
  let rng = Rng.create ~seed:11 in
  let counts = Hashtbl.create 16 in
  for _ = 1 to 5000 do
    let p = Sp.random_uniform rng ~n:4 in
    let key = Sp.to_string p in
    Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  done;
  Alcotest.(check int) "support covered" 15 (Hashtbl.length counts);
  Hashtbl.iter
    (fun _ c ->
      (* Expected 333; allow generous slack. *)
      Alcotest.(check bool) "roughly uniform" true (c > 200 && c < 500))
    counts

let test_two_partition () =
  Alcotest.(check int) "count n=2" 1 (Two_partition.count ~n:2);
  Alcotest.(check int) "count n=4" 3 (Two_partition.count ~n:4);
  Alcotest.(check int) "count n=6" 15 (Two_partition.count ~n:6);
  Alcotest.(check int) "count n=8" 105 (Two_partition.count ~n:8);
  List.iter
    (fun p -> Alcotest.(check bool) "all parts size 2" true (Two_partition.is_two_partition p))
    (Two_partition.all ~n:6);
  let p = Two_partition.of_pairs ~n:4 [ (0, 2); (1, 3) ] in
  Alcotest.(check (list (pair int int))) "pairs roundtrip" [ (0, 2); (1, 3) ] (Two_partition.pairs p);
  let rng = Rng.create ~seed:3 in
  let r = Two_partition.random rng ~n:10 in
  Alcotest.(check bool) "random is two-partition" true (Two_partition.is_two_partition r);
  Alcotest.check_raises "odd n" (Invalid_argument "Two_partition.iter: n must be positive and even")
    (fun () -> Two_partition.iter ~n:5 (fun _ -> ()))

let test_lattice_bounds () =
  let n = 5 in
  let one = Sp.coarsest n and fine = Sp.finest n in
  Sp.iter ~n (fun p ->
      Alcotest.check sp "join with 1" one (Sp.join p one);
      Alcotest.check sp "join with finest" p (Sp.join p fine);
      Alcotest.check sp "meet with finest" fine (Sp.meet p fine);
      Alcotest.check sp "meet with 1" p (Sp.meet p one))

let test_block_count_distribution () =
  (* Under exactly-uniform sampling, the number of blocks follows
     Stirling: P(k blocks) = S(n,k)/B_n. Check n=5 frequencies against
     S(5,k) = 1, 15, 25, 10, 1 (B_5 = 52) with generous slack. *)
  let rng = Rng.create ~seed:21 in
  let n = 5 in
  let trials = 10400 in
  let counts = Array.make (n + 1) 0 in
  for _ = 1 to trials do
    let p = Sp.random_uniform rng ~n in
    counts.(Sp.num_parts p) <- counts.(Sp.num_parts p) + 1
  done;
  let stirling = [| 0; 1; 15; 25; 10; 1 |] in
  for k = 1 to n do
    let expected = float_of_int (trials * stirling.(k)) /. 52.0 in
    let got = float_of_int counts.(k) in
    Alcotest.(check bool)
      (Printf.sprintf "k=%d frequency" k)
      true
      (Float.abs (got -. expected) < (0.25 *. expected) +. 30.0)
  done

let suites =
  [ Alcotest.test_case "construction" `Quick test_construction;
    Alcotest.test_case "construction invalid" `Quick test_construction_invalid;
    Alcotest.test_case "join (paper example)" `Quick test_join_paper_example;
    Alcotest.test_case "refinement (paper example)" `Quick test_refinement_paper_example;
    Alcotest.test_case "enumeration counts" `Quick test_enumeration_counts;
    Alcotest.test_case "enumeration distinct" `Quick test_enumeration_distinct;
    Alcotest.test_case "rank/unrank" `Quick test_rank_unrank;
    Alcotest.test_case "uniform sampling coverage" `Quick test_random_uniform_covers;
    Alcotest.test_case "two-partition" `Quick test_two_partition;
    Alcotest.test_case "lattice bounds" `Quick test_lattice_bounds;
    Alcotest.test_case "uniform block-count distribution" `Slow test_block_count_distribution ]

let qsuites =
  let open QCheck2 in
  let gen_partition =
    Gen.(
      pair (2 -- 9) (0 -- 1_000_000) >|= fun (n, seed) ->
      Sp.random_crp (Rng.create ~seed) ~n)
  in
  let gen_pair =
    Gen.(
      pair (2 -- 9) (0 -- 1_000_000) >|= fun (n, seed) ->
      let rng = Rng.create ~seed in
      (Sp.random_crp rng ~n, Sp.random_crp rng ~n))
  in
  let gen_triple =
    Gen.(
      pair (2 -- 8) (0 -- 1_000_000) >|= fun (n, seed) ->
      let rng = Rng.create ~seed in
      (Sp.random_crp rng ~n, Sp.random_crp rng ~n, Sp.random_crp rng ~n))
  in
  [ Test.make ~name:"join commutative" ~count:500 gen_pair (fun (a, b) ->
        Sp.equal (Sp.join a b) (Sp.join b a));
    Test.make ~name:"join associative" ~count:300 gen_triple (fun (a, b, c) ->
        Sp.equal (Sp.join a (Sp.join b c)) (Sp.join (Sp.join a b) c));
    Test.make ~name:"join idempotent" ~count:300 gen_partition (fun a -> Sp.equal (Sp.join a a) a);
    Test.make ~name:"both refine join" ~count:500 gen_pair (fun (a, b) ->
        let j = Sp.join a b in
        Sp.refines a j && Sp.refines b j);
    Test.make ~name:"join is the finest coarsening (vs meet dual)" ~count:300 gen_pair
      (fun (a, b) ->
        (* meet refines both operands. *)
        let m = Sp.meet a b in
        Sp.refines m a && Sp.refines m b);
    Test.make ~name:"refines is antisymmetric" ~count:300 gen_pair (fun (a, b) ->
        (not (Sp.refines a b && Sp.refines b a)) || Sp.equal a b);
    Test.make ~name:"rank/unrank roundtrip" ~count:300
      Gen.(pair (1 -- 10) (0 -- 1_000_000))
      (fun (n, seed) ->
        let p = Sp.random_crp (Rng.create ~seed) ~n in
        Sp.equal (Sp.unrank ~n (Sp.rank p)) p);
    Test.make ~name:"rgs roundtrip" ~count:300 gen_partition (fun p ->
        Sp.equal (Sp.of_rgs (Sp.to_rgs p)) p) ]
