test/test_plschemes.ml: Alcotest Array Bcclb_algorithms Bcclb_bcc Bcclb_graph Bcclb_plschemes Bcclb_util Bytes Gen List QCheck2 Scheme Spanning_tree Test Transcript_scheme
