test/test_linalg.ml: Alcotest Array Bareiss Bcclb_bignum Bcclb_linalg Bcclb_util Gen List Partition_matrix Printf QCheck2 Test Zint Zmod
