test/test_bignum.ml: Alcotest Array Bcclb_bignum Bcclb_util Combi Gen List Nat Printf QCheck2 Ratio String Test Zint
