test/test_bcc.ml: Alcotest Algo Array Bcclb_algorithms Bcclb_bcc Bcclb_graph Bcclb_util Bool Fun Instance List Msg Printf Problems QCheck2 Simulator Split String Test Transcript View
