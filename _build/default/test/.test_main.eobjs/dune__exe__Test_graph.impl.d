test/test_graph.ml: Alcotest Array Bcclb_graph Bcclb_util Cycles Gen Graph Hopcroft_karp Int List QCheck2 Test Union_find
