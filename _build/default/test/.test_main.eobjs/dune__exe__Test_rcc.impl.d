test/test_rcc.ml: Alcotest Array Bcclb_algorithms Bcclb_bcc Bcclb_graph Bcclb_rcc Bcclb_util Fun Gen List Printf QCheck2 Rcc_algo Rcc_simulator Test Token_routing
