test/test_util.ml: Alcotest Array Arrayx Bcclb_util Bits Fun Gen Int Mathx QCheck2 Rng Test
