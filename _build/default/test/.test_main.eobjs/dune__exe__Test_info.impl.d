test/test_info.ml: Alcotest Bcclb_info Bcclb_util Dist Entropy Gen List QCheck2 Test
