test/test_sketch.ml: Alcotest Bcclb_sketch Bcclb_util Edge_coding Gen Hashtbl L0_sampler List QCheck2 String Test
