test/test_partition.ml: Alcotest Array Bcclb_partition Bcclb_util Float Gen Hashtbl List Option Printf QCheck2 Set_partition Test Two_partition
