open Bcclb_info
module Mathx = Bcclb_util.Mathx

let feq ?(eps = 1e-9) = Mathx.float_eq ~eps

let test_dist () =
  let d = Dist.of_weighted [ ("a", 1.0); ("b", 3.0) ] in
  Alcotest.(check bool) "prob a" true (feq (Dist.prob d "a") 0.25);
  Alcotest.(check bool) "prob b" true (feq (Dist.prob d "b") 0.75);
  Alcotest.(check bool) "prob other" true (feq (Dist.prob d "c") 0.0);
  Alcotest.(check bool) "total" true (feq (Dist.total d) 1.0);
  Alcotest.(check int) "size" 2 (Dist.size d);
  (* Accumulation of repeated atoms. *)
  let d2 = Dist.of_weighted [ ("x", 1.0); ("x", 1.0); ("y", 2.0) ] in
  Alcotest.(check bool) "accumulates" true (feq (Dist.prob d2 "x") 0.5);
  Alcotest.check_raises "negative weight" (Invalid_argument "Dist.of_weighted: negative weight")
    (fun () -> ignore (Dist.of_weighted [ ("a", -1.0) ]))

let test_entropy_basics () =
  Alcotest.(check bool) "uniform 2" true (feq (Entropy.entropy (Dist.uniform [ 0; 1 ])) 1.0);
  Alcotest.(check bool) "uniform 8" true (feq (Entropy.entropy (Dist.uniform [ 0; 1; 2; 3; 4; 5; 6; 7 ])) 3.0);
  Alcotest.(check bool) "deterministic" true (feq (Entropy.entropy (Dist.uniform [ 42 ])) 0.0);
  Alcotest.(check bool) "binary 1/2" true (feq (Entropy.binary_entropy 0.5) 1.0);
  Alcotest.(check bool) "binary 0" true (feq (Entropy.binary_entropy 0.0) 0.0);
  Alcotest.(check bool) "skewed < 1" true (Entropy.binary_entropy 0.1 < 1.0)

let test_joint_and_mi () =
  (* Independent X, Y uniform on {0,1}: I = 0, H(X,Y) = 2, H(X|Y) = 1. *)
  let indep =
    Entropy.joint [ (((0, 0), 1.0)); ((0, 1), 1.0); ((1, 0), 1.0); ((1, 1), 1.0) ]
  in
  Alcotest.(check bool) "joint entropy 2" true (feq (Entropy.joint_entropy indep) 2.0);
  Alcotest.(check bool) "independent MI 0" true (feq (Entropy.mutual_information indep) 0.0);
  Alcotest.(check bool) "H(X|Y)=1" true (feq (Entropy.conditional_entropy indep) 1.0);
  (* Fully dependent Y = X: I = 1, H(X|Y) = 0. *)
  let dep = Entropy.joint [ ((0, 0), 1.0); ((1, 1), 1.0) ] in
  Alcotest.(check bool) "dependent MI 1" true (feq (Entropy.mutual_information dep) 1.0);
  Alcotest.(check bool) "H(X|Y)=0" true (feq (Entropy.conditional_entropy dep) 0.0)

let test_mi_fn () =
  (* f injective: I(X; f(X)) = H(X) = log2 4. *)
  let xs = [ 1; 2; 3; 4 ] in
  Alcotest.(check bool) "injective" true (feq (Entropy.mutual_information_fn xs (fun x -> x * 7)) 2.0);
  (* f constant: 0 bits. *)
  Alcotest.(check bool) "constant" true (feq (Entropy.mutual_information_fn xs (fun _ -> 0)) 0.0);
  (* f parity: 1 bit. *)
  Alcotest.(check bool) "parity" true (feq (Entropy.mutual_information_fn xs (fun x -> x land 1)) 1.0)

let test_conditional_mi () =
  let feq = Bcclb_util.Mathx.float_eq ~eps:1e-9 in
  (* Z constant: I(X;Y|Z) = I(X;Y). *)
  let pairs = [ ((0, 0), 2.0); ((0, 1), 1.0); ((1, 0), 1.0); ((1, 1), 2.0) ] in
  let triples = List.map (fun (xy, w) -> ((xy, 0), w)) pairs in
  Alcotest.(check bool) "Z constant" true
    (feq (Entropy.conditional_mutual_information triples)
       (Entropy.mutual_information (Entropy.joint pairs)));
  (* X = Y = Z: conditioning on Z reveals everything, I(X;Y|Z) = 0. *)
  let triples = [ (((0, 0), 0), 1.0); (((1, 1), 1), 1.0) ] in
  Alcotest.(check bool) "fully explained by Z" true
    (feq (Entropy.conditional_mutual_information triples) 0.0)

let test_pushforward () =
  let d = Dist.uniform [ 1; 2; 3; 4 ] in
  let pushed = Dist.map_support (fun x -> x land 1) d in
  Alcotest.(check bool) "pushforward mass" true (feq (Dist.prob pushed 0) 0.5)

let suites =
  [ Alcotest.test_case "dist" `Quick test_dist;
    Alcotest.test_case "entropy basics" `Quick test_entropy_basics;
    Alcotest.test_case "joint and MI" `Quick test_joint_and_mi;
    Alcotest.test_case "MI of functions" `Quick test_mi_fn;
    Alcotest.test_case "conditional MI" `Quick test_conditional_mi;
    Alcotest.test_case "pushforward" `Quick test_pushforward ]

let qsuites =
  let open QCheck2 in
  let gen_joint =
    Gen.(
      list_size (1 -- 30) (pair (pair (0 -- 5) (0 -- 5)) (1 -- 100)) >|= fun pairs ->
      Entropy.joint (List.map (fun (xy, w) -> (xy, float_of_int w)) pairs))
  in
  [ Test.make ~name:"MI is non-negative" ~count:300 gen_joint (fun j ->
        Entropy.mutual_information j >= -1e-9);
    Test.make ~name:"MI bounded by both marginals" ~count:300 gen_joint (fun j ->
        let mi = Entropy.mutual_information j in
        mi <= Entropy.entropy (Entropy.marginal_x j) +. 1e-9
        && mi <= Entropy.entropy (Entropy.marginal_y j) +. 1e-9);
    Test.make ~name:"chain rule H(X,Y) = H(Y) + H(X|Y)" ~count:300 gen_joint (fun j ->
        Mathx.float_eq ~eps:1e-9
          (Entropy.joint_entropy j)
          (Entropy.entropy (Entropy.marginal_y j) +. Entropy.conditional_entropy j));
    Test.make ~name:"entropy bounded by log support" ~count:300 gen_joint (fun j ->
        Entropy.joint_entropy j <= Mathx.log2 (float_of_int (Dist.size j)) +. 1e-9);
    Test.make ~name:"conditional MI non-negative" ~count:300
      QCheck2.Gen.(list_size (1 -- 25) (pair (pair (pair (0 -- 3) (0 -- 3)) (0 -- 3)) (1 -- 50)))
      (fun triples ->
        let triples = List.map (fun (xyz, w) -> (xyz, float_of_int w)) triples in
        Entropy.conditional_mutual_information triples >= -1e-9) ]
