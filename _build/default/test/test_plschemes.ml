open Bcclb_plschemes
module Instance = Bcclb_bcc.Instance
module Ggen = Bcclb_graph.Gen
module Rng = Bcclb_util.Rng

let spanning = Spanning_tree.scheme

let test_spanning_tree_completeness () =
  let rng = Rng.create ~seed:1 in
  List.iter
    (fun make_inst ->
      for _ = 1 to 10 do
        let g = Ggen.random_connected rng 12 in
        let inst = make_inst g in
        match spanning.Scheme.prove inst with
        | None -> Alcotest.fail "prover must succeed on connected graphs"
        | Some labels ->
          let r = Scheme.run spanning inst ~labels in
          Alcotest.(check bool) "all accept" true r.Scheme.accepted
      done)
    [ Instance.kt0_circulant; Instance.kt1_of_graph ]

let test_spanning_tree_no_proof_on_disconnected () =
  let rng = Rng.create ~seed:2 in
  let g = Ggen.random_two_cycles rng 10 in
  Alcotest.(check bool) "no honest proof" true (spanning.Scheme.prove (Instance.kt0_circulant g) = None)

let test_spanning_tree_soundness () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 5 do
    let no = Ggen.random_two_cycles rng 10 in
    let inst = Instance.kt0_circulant no in
    (* Candidate fooling labelings: honest labels of connected instances
       with the same vertex set. *)
    let candidates =
      List.filter_map
        (fun _ ->
          spanning.Scheme.prove (Instance.kt0_circulant (Ggen.random_cycle rng 10)))
        (Bcclb_util.Arrayx.range 0 5)
    in
    match Scheme.soundness_check ~trials:300 rng spanning inst ~candidate_labels:candidates with
    | None -> ()
    | Some _ -> Alcotest.fail "a fooling labelling was accepted on a disconnected instance"
  done

let test_spanning_tree_rejects_tampering () =
  let rng = Rng.create ~seed:4 in
  let g = Ggen.random_cycle rng 10 in
  let inst = Instance.kt0_circulant g in
  match spanning.Scheme.prove inst with
  | None -> Alcotest.fail "prover must succeed"
  | Some labels ->
    (* Lying about one's own id field must be caught by that vertex. *)
    let bad = Array.copy labels in
    bad.(3) <- bad.(4);
    let r = Scheme.run spanning inst ~labels:bad in
    Alcotest.(check bool) "tampered labels rejected" false r.Scheme.accepted

let test_encode_decode () =
  let f = { Spanning_tree.id = 7; root = 1; parent = 3; dist = 4 } in
  Alcotest.(check bool) "roundtrip" true (Spanning_tree.decode ~n:10 (Spanning_tree.encode ~n:10 f) = Some f);
  Alcotest.(check bool) "garbage rejected" true (Spanning_tree.decode ~n:10 "xyz" = None)

let transcript_scheme () =
  Transcript_scheme.of_algorithm
    (Bcclb_algorithms.Discovery.connectivity ~knowledge:Instance.KT0 ~max_degree:2)

let test_transcript_completeness () =
  let rng = Rng.create ~seed:5 in
  let scheme = transcript_scheme () in
  for _ = 1 to 5 do
    let g = Ggen.random_cycle rng 12 in
    let inst = Instance.kt0_circulant g in
    match scheme.Scheme.prove inst with
    | None -> Alcotest.fail "transcript prover must succeed on YES instances"
    | Some labels ->
      Alcotest.(check bool) "all accept" true (Scheme.accepts scheme inst ~labels)
  done

let test_transcript_no_proof_on_no_instances () =
  let rng = Rng.create ~seed:6 in
  let scheme = transcript_scheme () in
  let g = Ggen.random_two_cycles rng 12 in
  Alcotest.(check bool) "no proof" true (scheme.Scheme.prove (Instance.kt0_circulant g) = None)

let test_transcript_soundness () =
  (* Feeding the YES-instance transcripts to the crossed (NO) instance:
     consistency holds on most vertices but the four crossing endpoints'
     neighbours... the verifier must reject overall because the labels
     correspond to a run answering YES on a graph that is NOT this one —
     the replay detects a mismatch at some vertex. *)
  let scheme = transcript_scheme () in
  let n = 12 in
  let inst = Instance.kt0_circulant (Ggen.cycle n) in
  let crossed = Instance.cross inst (0, 1) (5, 6) in
  (match scheme.Scheme.prove inst with
  | None -> Alcotest.fail "prove failed"
  | Some labels ->
    Alcotest.(check bool) "YES transcripts rejected on crossed instance" false
      (Scheme.accepts scheme crossed ~labels));
  (* And random tampering with honest labels is rejected too. *)
  let rng = Rng.create ~seed:7 in
  match scheme.Scheme.prove inst with
  | None -> Alcotest.fail "prove failed"
  | Some labels ->
    for _ = 1 to 20 do
      let bad = Array.copy labels in
      let v = Rng.int rng n in
      let s = Bytes.of_string bad.(v) in
      let i = Rng.int rng (Bytes.length s) in
      Bytes.set s i (match Bytes.get s i with '0' -> '1' | '1' -> '_' | _ -> '0');
      bad.(v) <- Bytes.to_string s;
      Alcotest.(check bool) "tampered transcript rejected" false (Scheme.accepts scheme inst ~labels:bad)
    done

let test_label_sizes () =
  let scheme = transcript_scheme () in
  (* Discovery runs 3L rounds; transcript labels are 2 bits per round. *)
  Alcotest.(check int) "transcript label bits n=64" (2 * 21) (scheme.Scheme.label_bits ~n:64);
  Alcotest.(check int) "spanning label bits n=64" (4 * 7) (spanning.Scheme.label_bits ~n:64)

let suites =
  [ Alcotest.test_case "spanning tree completeness" `Quick test_spanning_tree_completeness;
    Alcotest.test_case "no proof on disconnected" `Quick test_spanning_tree_no_proof_on_disconnected;
    Alcotest.test_case "spanning tree soundness" `Slow test_spanning_tree_soundness;
    Alcotest.test_case "tampering rejected" `Quick test_spanning_tree_rejects_tampering;
    Alcotest.test_case "field encode/decode" `Quick test_encode_decode;
    Alcotest.test_case "transcript completeness" `Quick test_transcript_completeness;
    Alcotest.test_case "transcript: no proof on NO" `Quick test_transcript_no_proof_on_no_instances;
    Alcotest.test_case "transcript soundness" `Slow test_transcript_soundness;
    Alcotest.test_case "label sizes" `Quick test_label_sizes ]

let qsuites =
  let open QCheck2 in
  [ Test.make ~name:"spanning scheme: honest <=> connected" ~count:100
      Gen.(pair (6 -- 14) (0 -- 100000))
      (fun (n, seed) ->
        let rng = Rng.create ~seed in
        let g = if Rng.bool rng then Ggen.random_multicycle rng n else Ggen.random_connected rng n in
        let inst = Instance.kt0_circulant g in
        let provable = Spanning_tree.scheme.Scheme.prove inst <> None in
        provable = Bcclb_graph.Graph.is_connected g);
    Test.make ~name:"honest proofs always verify" ~count:100
      Gen.(pair (6 -- 14) (0 -- 100000))
      (fun (n, seed) ->
        let rng = Rng.create ~seed in
        let g = Ggen.random_connected rng n in
        let inst = Instance.kt1_of_graph g in
        match Spanning_tree.scheme.Scheme.prove inst with
        | None -> false
        | Some labels -> Scheme.accepts Spanning_tree.scheme inst ~labels) ]
