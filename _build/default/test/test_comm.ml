open Bcclb_comm
open Bcclb_partition
module Sp = Set_partition
module Rng = Bcclb_util.Rng
module G = Bcclb_graph.Graph

let sp = Alcotest.testable Sp.pp Sp.equal

let test_protocol_codecs () =
  Alcotest.(check string) "encode" "0101" (Protocol.encode_int ~width:4 5);
  Alcotest.(check int) "decode" 5 (Protocol.decode_int "0101");
  Alcotest.(check (list int)) "ints roundtrip" [ 3; 0; 7 ]
    (Protocol.decode_ints ~width:3 (Protocol.encode_ints ~width:3 [ 3; 0; 7 ]));
  Alcotest.check_raises "overflow" (Invalid_argument "Protocol.encode_int: value does not fit")
    (fun () -> ignore (Protocol.encode_int ~width:2 4))

let test_protocol_run_rejects_nonbits () =
  let bad =
    { Protocol.name = "bad";
      rounds = 1;
      alice = (fun () ~round:_ ~received:_ -> "abc");
      bob = (fun () ~round:_ ~received:_ -> "");
      output_a = (fun () ~received:_ -> ());
      output_b = (fun () ~received:_ -> ()) }
  in
  Alcotest.(check bool) "rejects" true
    (try
       ignore (Protocol.run bad () ());
       false
     with Invalid_argument _ -> true)

let test_partition_protocol () =
  let n = 6 in
  let spec = Upper_bounds.partition_protocol ~n in
  let pa = Sp.of_blocks ~n [ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ] ] in
  let pb_yes = Sp.of_blocks ~n [ [ 1; 2 ]; [ 3; 4 ]; [ 5; 0 ] ] in
  let pb_no = Sp.of_blocks ~n [ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ] ] in
  let r1 = Protocol.run spec pa pb_yes in
  Alcotest.(check bool) "yes instance, alice" true r1.Protocol.out_a;
  Alcotest.(check bool) "yes instance, bob" true r1.Protocol.out_b;
  let r2 = Protocol.run spec pa pb_no in
  Alcotest.(check bool) "no instance" false r2.Protocol.out_a;
  (* Cost: n*ceil(log2 n) + 1 = 6*3+1 = 19 bits. *)
  Alcotest.(check int) "bits" 19 (Protocol.total_bits r1)

let test_partition_comp_protocol () =
  let n = 5 in
  let spec = Upper_bounds.partition_comp_protocol ~n in
  let rng = Rng.create ~seed:12 in
  for _ = 1 to 50 do
    let pa = Sp.random_crp rng ~n and pb = Sp.random_crp rng ~n in
    let r = Protocol.run spec pa pb in
    Alcotest.check sp "alice output" (Sp.join pa pb) r.Protocol.out_a;
    Alcotest.check sp "bob output" (Sp.join pa pb) r.Protocol.out_b
  done

let test_connectivity2_protocol () =
  let n = 8 in
  let spec = Upper_bounds.connectivity2_protocol ~n in
  (* Two halves of a cycle: connected. *)
  let ea = [ (0, 1); (1, 2); (2, 3) ] and eb = [ (3, 4); (4, 5); (5, 6); (6, 7); (7, 0) ] in
  let r = Protocol.run spec ea eb in
  Alcotest.(check bool) "connected" true r.Protocol.out_b;
  (* Break the path into {0..4} and {5,6,7}: genuinely disconnected. *)
  let r2 = Protocol.run spec ea [ (3, 4); (5, 6); (6, 7) ] in
  Alcotest.(check bool) "disconnected" false r2.Protocol.out_b;
  Alcotest.(check bool) "outputs agree" true (r2.Protocol.out_a = r2.Protocol.out_b)

(* Theorem 4.3: components of the gadget induce exactly P_A v P_B. *)
let test_gadget_theorem_4_3_exhaustive () =
  let n = 4 in
  List.iter
    (fun pa ->
      List.iter
        (fun pb ->
          let g = Reduction_graph.gadget pa pb in
          Alcotest.check sp "induced partition = join" (Sp.join pa pb)
            (Reduction_graph.gadget_partition g ~n);
          Alcotest.(check bool) "connected iff join=1"
            (Sp.is_coarsest (Sp.join pa pb))
            (G.is_connected g))
        (Sp.all ~n))
    (Sp.all ~n)

let test_gadget_no_isolated () =
  let n = 5 in
  let pa = Sp.coarsest n and pb = Sp.coarsest n in
  let g = Reduction_graph.gadget pa pb in
  Alcotest.(check int) "4n vertices" (4 * n) (G.n g);
  for v = 0 to G.n g - 1 do
    Alcotest.(check bool) "no isolated vertex" true (G.degree g v >= 1)
  done

let test_two_gadget_structure () =
  let n = 6 in
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 30 do
    let pa = Two_partition.random rng ~n and pb = Two_partition.random rng ~n in
    let g = Reduction_graph.two_gadget pa pb in
    Alcotest.(check bool) "2-regular" true (G.is_regular g ~k:2);
    Alcotest.(check bool) "multicycle promise (cycles >= 4)" true
      (Bcclb_bcc.Problems.is_multicycle_input g);
    Alcotest.check sp "induced partition = join" (Sp.join pa pb)
      (Reduction_graph.two_gadget_partition g ~n)
  done

let test_rank_bound_values () =
  (* log2 B_4 = log2 15. *)
  Alcotest.(check bool) "partition bits n=4" true
    (Bcclb_util.Mathx.float_eq (Rank_bound.partition_bits ~n:4) (Bcclb_util.Mathx.log2 15.0));
  Alcotest.(check bool) "two-partition bits n=6" true
    (Bcclb_util.Mathx.float_eq (Rank_bound.two_partition_bits ~n:6) (Bcclb_util.Mathx.log2 15.0));
  (* Verified variants certify full rank and agree with closed form. *)
  Alcotest.(check bool) "verified M^4" true
    (Bcclb_util.Mathx.float_eq (Rank_bound.verified_partition_bits ~n:4) (Bcclb_util.Mathx.log2 15.0));
  Alcotest.(check bool) "verified E^6" true
    (Bcclb_util.Mathx.float_eq (Rank_bound.verified_two_partition_bits ~n:6) (Bcclb_util.Mathx.log2 15.0))

let test_bcc_simulation_costs () =
  let n = 6 in
  let algo = Bcclb_algorithms.Discovery.connectivity ~knowledge:Bcclb_bcc.Instance.KT1 ~max_degree:2 in
  let rng = Rng.create ~seed:9 in
  let pa = Two_partition.random rng ~n and pb = Two_partition.random rng ~n in
  let r = Bcc_simulation.two_partition_via_bcc algo pa pb in
  Alcotest.(check bool) "answer correct" (Sp.is_coarsest (Sp.join pa pb)) r.Bcc_simulation.answer;
  Alcotest.(check int) "gadget size" (2 * n) r.Bcc_simulation.gadget_n;
  (* 2 bits per char, 2n chars per round. *)
  Alcotest.(check int) "bits = 2 * N * rounds" (2 * 2 * n * r.Bcc_simulation.bcc_rounds)
    r.Bcc_simulation.bits

let test_bcc_simulation_matches_simulator () =
  (* The 2-party simulation must produce exactly the outputs of a direct
     KT-1 simulation. *)
  let algo = Bcclb_algorithms.Boruvka.components () in
  let rng = Rng.create ~seed:19 in
  let g = Bcclb_graph.Gen.gnp rng 10 0.25 in
  let direct = Bcclb_bcc.Simulator.run algo (Bcclb_bcc.Instance.kt1_of_graph g) in
  let sim = Bcc_simulation.run algo g ~alice_hosts:(fun v -> v < 5) in
  Alcotest.(check (array int)) "identical outputs" direct.Bcclb_bcc.Simulator.outputs
    sim.Bcc_simulation.outputs

let test_partition_via_bcc_pipeline () =
  (* Full Theorem 4.4 pipeline on general partitions via min-label. *)
  let n = 4 in
  let algo = Bcclb_algorithms.Min_label.connectivity ~phases:(4 * 4 * 2) () in
  List.iter
    (fun pa ->
      List.iter
        (fun pb ->
          let truth = Sp.is_coarsest (Sp.join pa pb) in
          let r = Bcc_simulation.partition_via_bcc algo pa pb in
          Alcotest.(check bool) "pipeline answer" truth r.Bcc_simulation.answer)
        (Bcclb_util.Arrayx.take 5 (Sp.all ~n)))
    (Bcclb_util.Arrayx.take 5 (Sp.all ~n))

let suites =
  [ Alcotest.test_case "protocol codecs" `Quick test_protocol_codecs;
    Alcotest.test_case "protocol rejects non-bits" `Quick test_protocol_run_rejects_nonbits;
    Alcotest.test_case "partition protocol" `Quick test_partition_protocol;
    Alcotest.test_case "partition-comp protocol" `Quick test_partition_comp_protocol;
    Alcotest.test_case "connectivity2 protocol" `Quick test_connectivity2_protocol;
    Alcotest.test_case "Theorem 4.3 exhaustive n=4" `Slow test_gadget_theorem_4_3_exhaustive;
    Alcotest.test_case "gadget no isolated vertices" `Quick test_gadget_no_isolated;
    Alcotest.test_case "two-gadget structure" `Quick test_two_gadget_structure;
    Alcotest.test_case "rank bound values" `Quick test_rank_bound_values;
    Alcotest.test_case "bcc simulation costs" `Quick test_bcc_simulation_costs;
    Alcotest.test_case "bcc simulation = direct simulation" `Quick test_bcc_simulation_matches_simulator;
    Alcotest.test_case "partition via bcc pipeline" `Slow test_partition_via_bcc_pipeline ]

let qsuites =
  let open QCheck2 in
  let gen_two_partitions =
    Gen.(
      pair (oneofl [ 4; 6; 8 ]) (0 -- 1_000_000) >|= fun (n, seed) ->
      let rng = Rng.create ~seed in
      (n, Two_partition.random rng ~n, Two_partition.random rng ~n))
  in
  let gen_partitions =
    Gen.(
      pair (2 -- 7) (0 -- 1_000_000) >|= fun (n, seed) ->
      let rng = Rng.create ~seed in
      (n, Sp.random_crp rng ~n, Sp.random_crp rng ~n))
  in
  [ Test.make ~name:"Theorem 4.3 (random partitions)" ~count:200 gen_partitions
      (fun (n, pa, pb) ->
        let g = Reduction_graph.gadget pa pb in
        Sp.equal (Reduction_graph.gadget_partition g ~n) (Sp.join pa pb));
    Test.make ~name:"two-gadget is a MultiCycle instance" ~count:200 gen_two_partitions
      (fun (_, pa, pb) ->
        let g = Reduction_graph.two_gadget pa pb in
        G.is_regular g ~k:2 && Bcclb_bcc.Problems.is_multicycle_input g);
    Test.make ~name:"partition protocol agrees with truth" ~count:200 gen_partitions
      (fun (n, pa, pb) ->
        let r = Protocol.run (Upper_bounds.partition_protocol ~n) pa pb in
        r.Protocol.out_b = Sp.is_coarsest (Sp.join pa pb));
    Test.make ~name:"2-party simulation = direct, ANY hosting split" ~count:40
      Gen.(pair (6 -- 12) (0 -- 100000))
      (fun (n, seed) ->
        let rng = Rng.create ~seed in
        let g = Bcclb_graph.Gen.gnp rng n 0.25 in
        let mask = Array.init n (fun _ -> Rng.bool rng) in
        let algo = Bcclb_algorithms.Boruvka.components () in
        let direct = Bcclb_bcc.Simulator.run algo (Bcclb_bcc.Instance.kt1_of_graph g) in
        let sim = Bcc_simulation.run algo g ~alice_hosts:(fun v -> mask.(v)) in
        direct.Bcclb_bcc.Simulator.outputs = sim.Bcc_simulation.outputs);
    Test.make ~name:"connectivity2 protocol matches ground truth" ~count:100
      Gen.(pair (4 -- 14) (0 -- 100000))
      (fun (n, seed) ->
        let rng = Rng.create ~seed in
        let g = Bcclb_graph.Gen.gnp rng n 0.3 in
        (* Random edge split between Alice and Bob. *)
        let ea = ref [] and eb = ref [] in
        List.iter
          (fun e -> if Rng.bool rng then ea := e :: !ea else eb := e :: !eb)
          (Bcclb_graph.Graph.edges g);
        let r = Protocol.run (Upper_bounds.connectivity2_protocol ~n) !ea !eb in
        r.Protocol.out_a = Bcclb_graph.Graph.is_connected g
        && r.Protocol.out_b = r.Protocol.out_a);
    Test.make ~name:"pipeline answer matches join truth" ~count:50 gen_two_partitions
      (fun (_n, pa, pb) ->
        let algo =
          Bcclb_algorithms.Discovery.connectivity ~knowledge:Bcclb_bcc.Instance.KT1 ~max_degree:2
        in
        let r = Bcc_simulation.two_partition_via_bcc algo pa pb in
        r.Bcc_simulation.answer = Sp.is_coarsest (Sp.join pa pb)) ]
