.PHONY: all build test check bench experiments clean

all: build

build:
	dune build

test:
	dune runtest

# The tier-1 gate: what CI runs.
check:
	dune build && dune runtest

bench:
	dune exec bench/main.exe

experiments:
	dune exec bin/experiments.exe -- all

clean:
	dune clean
