.PHONY: all build test check bench experiments clean

all: build

build:
	dune build

test:
	dune runtest

# The tier-1 gate: what CI runs. Stray trace files from local --trace /
# BCCLB_TRACE runs, dist sockets from killed --backend procs runs, serve
# daemon leftovers (sockets, replay dumps, BENCH_serve.json), and the
# arena orbit spill segments (results/cache/arena — content-addressed,
# always rebuildable) are cleaned up so they never end up in commits.
check:
	rm -f *.trace.json *.trace.jsonl *.sock serve-* BENCH_serve.json
	rm -f BENCH_current.json BENCH_doctored.json scrape.txt
	rm -rf results/cache/arena telemetry-* e15-*
	dune build && dune runtest

bench:
	dune exec bench/main.exe

experiments:
	dune exec bin/experiments.exe -- all

clean:
	dune clean
