.PHONY: all build test check bench experiments clean

all: build

build:
	dune build

test:
	dune runtest

# The tier-1 gate: what CI runs. Stray trace files from local --trace /
# BCCLB_TRACE runs and dist sockets from killed --backend procs runs are
# cleaned up so they never end up in commits.
check:
	rm -f *.trace.json *.trace.jsonl *.sock
	dune build && dune runtest

bench:
	dune exec bench/main.exe

experiments:
	dune exec bin/experiments.exe -- all

clean:
	dune clean
